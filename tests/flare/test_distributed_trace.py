"""Distributed tracing across fabrics: one tree, one clock, no collisions.

The property under test: a telemetry-enabled run on ANY fabric — threaded
in-memory, process-per-client sockets, fork-inherited shared memory —
produces one merged ``trace.jsonl`` in which

- every span carries the run's single ``trace_id`` lineage (header +
  per-process join markers agree);
- span ids are globally unique even though workers are forked processes
  minting ids independently (ids are process-prefixed);
- every ``client_task`` is a direct child of the server's ``round`` span
  for the same round, and every ``local_train`` sits under a
  ``client_task`` — the tree crosses process boundaries;
- after per-process clock alignment, child intervals nest inside their
  remote parent's interval on the server's timeline.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.flare import FLJob, SimulatorRunner
from repro.obs import trace as obs_trace
from repro.obs.report import load_trace, load_trace_events

from .helpers import ToyLearner, toy_weights

TRANSPORTS = ("memory", "socket", "shm")

# Clock offsets are derived from a shared CLOCK_MONOTONIC with a single
# sample for send-timestamp and context, so alignment is near-exact; the
# slack only covers float rounding in the exported records.
ALIGN_SLACK = 0.005


class TracingLearner(ToyLearner):
    """Opens a ``local_train`` span so the full chain exists without a model."""

    def train(self, dxo, fl_ctx):
        with obs_trace.span("local_train", site=self.site_name):
            return super().train(dxo, fl_ctx)


@pytest.fixture(scope="module", params=TRANSPORTS)
def traced_run(request, tmp_path_factory):
    transport = request.param
    run_dir = tmp_path_factory.mktemp(f"trace-{transport}")
    job = FLJob(name="traced", initial_weights=toy_weights(0.0),
                learner_factory=lambda name: TracingLearner(name, delta=1.0),
                num_rounds=2,
                evaluator=lambda w: {"valid_acc": float(np.mean(w["layer.weight"]))})
    result = SimulatorRunner(job, n_clients=2, seed=0, run_dir=run_dir,
                             transport=transport, telemetry=True,
                             telemetry_flush=0.2).run()
    trace_path = run_dir / "trace.jsonl"
    return {
        "transport": transport,
        "result": result,
        "spans": load_trace(trace_path),
        "events": load_trace_events(trace_path),
    }


def spans_named(run, name):
    return [s for s in run["spans"] if s["name"] == name]


class TestMergedTree:
    def test_single_trace_id_everywhere(self, traced_run):
        events = traced_run["events"]
        header = next(e for e in events if e.get("schema"))
        trace_ids = {header["trace_id"]}
        trace_ids |= {e["trace_id"] for e in events
                      if e.get("event") == "process" and "trace_id" in e}
        footer = [e for e in events if e.get("event") == "end"]
        trace_ids |= {f["trace_id"] for f in footer if "trace_id" in f}
        assert len(trace_ids) == 1
        assert len(footer) == 1

    def test_span_ids_globally_unique(self, traced_run):
        ids = [s["span_id"] for s in traced_run["spans"]]
        assert len(ids) == len(set(ids))

    def test_every_span_id_carries_its_process(self, traced_run):
        for span in traced_run["spans"]:
            assert span["span_id"].startswith(span["process"] + "-")

    def test_worker_processes_present(self, traced_run):
        processes = {s["process"] for s in traced_run["spans"]}
        assert "server" in processes
        if traced_run["transport"] != "memory":
            # process-per-client fabrics: each site's spans come from its
            # own forked process
            assert {"site-1", "site-2"} <= processes

    def test_client_tasks_are_children_of_their_round(self, traced_run):
        rounds = {s["attrs"]["round"]: s for s in spans_named(traced_run, "round")}
        tasks = spans_named(traced_run, "client_task")
        assert len(rounds) == 2
        assert len(tasks) == 4  # 2 clients x 2 rounds
        for task in tasks:
            round_span = rounds[task["attrs"]["round"]]
            assert task["parent_id"] == round_span["span_id"]

    def test_local_train_under_client_task(self, traced_run):
        tasks = {s["span_id"]: s for s in spans_named(traced_run, "client_task")}
        trains = spans_named(traced_run, "local_train")
        assert len(trains) == 4
        for train in trains:
            parent = tasks[train["parent_id"]]
            assert parent["process"] == train["process"]

    def test_child_intervals_nest_in_remote_parent(self, traced_run):
        rounds = {s["attrs"]["round"]: s for s in spans_named(traced_run, "round")}
        for task in spans_named(traced_run, "client_task"):
            round_span = rounds[task["attrs"]["round"]]
            assert task["t_start"] >= round_span["t_start"] - ALIGN_SLACK
            assert task["t_end"] <= round_span["t_end"] + ALIGN_SLACK
            for train in spans_named(traced_run, "local_train"):
                if train["parent_id"] != task["span_id"]:
                    continue
                assert train["t_start"] >= task["t_start"] - ALIGN_SLACK
                assert train["t_end"] <= task["t_end"] + ALIGN_SLACK

    def test_worker_clock_offsets_recorded(self, traced_run):
        if traced_run["transport"] == "memory":
            pytest.skip("single process, no clock to align")
        joins = {e["process"]: e for e in traced_run["events"]
                 if e.get("event") == "process"}
        assert {"site-1", "site-2"} <= set(joins)
        for join in joins.values():
            assert isinstance(join["clock_offset"], float)

    def test_trace_valid_jsonl_line_per_record(self, traced_run):
        trace_path = traced_run["result"].run_dir / "trace.jsonl"
        for line in trace_path.read_text().splitlines():
            json.loads(line)

    def test_codec_spans_with_byte_attrs(self, traced_run):
        codec_spans = [s for s in traced_run["spans"]
                       if s["name"].startswith("codec.")]
        assert {s["name"] for s in codec_spans} >= {"codec.encode",
                                                    "codec.decode"}
        for span in codec_spans:
            assert span["attrs"]["codec"]
            assert span["attrs"]["raw_bytes"] >= 0
            assert span["attrs"]["encoded_bytes"] > 0


class TestFilterSpans:
    def test_compression_filter_passes_traced(self, tmp_path):
        job = FLJob(name="filtered", initial_weights=toy_weights(0.0),
                    learner_factory=lambda name: ToyLearner(name, delta=1.0),
                    num_rounds=1)
        run_dir = tmp_path / "filtered"
        SimulatorRunner(job, n_clients=2, seed=0, run_dir=run_dir,
                        telemetry=True, compression="delta+fp16").run()
        filters = [s for s in load_trace(run_dir / "trace.jsonl")
                   if s["name"] == "filter"]
        stages = {s["attrs"]["stage"] for s in filters}
        assert {"task_data", "task_result", "server_result"} <= stages
        assert all(s["attrs"]["filter"] for s in filters)
