"""In-memory signed transport."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import (
    DXO,
    DataKind,
    MessageBus,
    Shareable,
    TransportError,
    from_dxo,
    to_dxo,
)


def wired_bus():
    bus = MessageBus()
    bus.register_endpoint("server")
    bus.register_endpoint("site-1")
    bus.install_session_key("server", b"server-key")
    bus.install_session_key("site-1", b"client-key")
    return bus


def payload():
    return from_dxo(DXO(DataKind.WEIGHTS, data={"w": np.arange(4.0)}))


class TestDelivery:
    def test_roundtrip(self):
        bus = wired_bus()
        bus.send_shareable("server", "site-1", "train", payload())
        sender, topic, shareable = bus.receive("site-1", timeout=1.0)
        assert sender == "server" and topic == "train"
        np.testing.assert_array_equal(to_dxo(shareable).data["w"], np.arange(4.0))

    def test_headers_survive(self):
        bus = wired_bus()
        task = payload()
        task.set_header("round", 3)
        bus.send_shareable("server", "site-1", "train", task)
        _, _, received = bus.receive("site-1", timeout=1.0)
        assert received.get_header("round") == 3

    def test_fifo_order(self):
        bus = wired_bus()
        for i in range(3):
            s = Shareable({"i": i})
            bus.send_shareable("server", "site-1", "t", s)
        got = [bus.receive("site-1", timeout=1.0)[2]["i"] for _ in range(3)]
        assert got == [0, 1, 2]

    def test_counters(self):
        bus = wired_bus()
        bus.send_shareable("server", "site-1", "t", payload())
        assert bus.delivered_count == 1 and bus.delivered_bytes > 0

    def test_pending(self):
        bus = wired_bus()
        assert bus.pending("site-1") == 0
        bus.send_shareable("server", "site-1", "t", Shareable())
        assert bus.pending("site-1") == 1


class TestSecurityChecks:
    def test_unregistered_sender_rejected(self):
        bus = MessageBus()
        bus.register_endpoint("site-1")
        with pytest.raises(TransportError, match="session key"):
            bus.send_shareable("ghost", "site-1", "t", Shareable())

    def test_unknown_recipient_rejected(self):
        bus = wired_bus()
        with pytest.raises(TransportError, match="recipient"):
            bus.send_shareable("server", "ghost", "t", Shareable())

    def test_unknown_receiver_endpoint(self):
        bus = wired_bus()
        with pytest.raises(TransportError, match="endpoint"):
            bus.receive("ghost")

    def test_timeout_raises(self):
        bus = wired_bus()
        with pytest.raises(TransportError, match="no message"):
            bus.receive("site-1", timeout=0.05)

    def test_tampered_message_rejected(self):
        bus = wired_bus()
        bus.send_shareable("server", "site-1", "t", payload())
        # tamper in-flight
        message = bus._queues["site-1"].queue[0]
        message.body = message.body[:-1] + bytes([message.body[-1] ^ 0xFF])
        with pytest.raises(TransportError, match="signature"):
            bus.receive("site-1", timeout=1.0)

    def test_key_rotation_invalidates_old_messages(self):
        bus = wired_bus()
        bus.send_shareable("server", "site-1", "t", payload())
        bus.install_session_key("server", b"new-key")
        with pytest.raises(TransportError, match="signature"):
            bus.receive("site-1", timeout=1.0)

    def test_install_key_for_unknown_endpoint(self):
        bus = MessageBus()
        with pytest.raises(TransportError):
            bus.install_session_key("nobody", b"k")
