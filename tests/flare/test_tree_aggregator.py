"""TreeAggregator: hierarchical fan-in equivalence, depth and materialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import (
    DXO,
    CoordinateMedianAggregator,
    DataKind,
    FLContext,
    InTimeAccumulateWeightedAggregator,
    MaterializationTracker,
    MetaKey,
    TreeAggregator,
)


def update(value: float, steps: int = 10) -> DXO:
    return DXO(data_kind=DataKind.WEIGHTS,
               data={"w": np.full((3, 3), value, dtype=np.float32)},
               meta={MetaKey.NUM_STEPS_CURRENT_ROUND: steps})


def fold_all(agg, updates, ctx=None):
    ctx = ctx or FLContext()
    for i, (value, steps) in enumerate(updates):
        assert agg.accept(update(value, steps), f"site-{i}", ctx)
    return agg.aggregate(ctx)


class TestTreeEquivalence:
    def test_matches_flat_weighted_mean(self):
        updates = [(float(i), 5 + i % 7) for i in range(100)]
        flat = fold_all(InTimeAccumulateWeightedAggregator(), updates)
        tree = fold_all(TreeAggregator(arity=4), updates)
        np.testing.assert_allclose(tree.data["w"], flat.data["w"], rtol=1e-5)

    def test_unequal_weights_compose_exactly_through_partials(self):
        # one heavy site among light ones: the subtree partial must carry
        # the subtree's total weight or the heavy site gets diluted
        updates = [(1.0, 1)] * 7 + [(100.0, 1000)]
        flat = fold_all(InTimeAccumulateWeightedAggregator(), updates)
        tree = fold_all(TreeAggregator(arity=2), updates)
        np.testing.assert_allclose(tree.data["w"], flat.data["w"], rtol=1e-4)

    def test_partial_tree_aggregates(self):
        # n not a multiple of arity: leftovers at every level still fold
        updates = [(float(i), 10) for i in range(37)]
        flat = fold_all(InTimeAccumulateWeightedAggregator(), updates)
        tree = fold_all(TreeAggregator(arity=8), updates)
        np.testing.assert_allclose(tree.data["w"], flat.data["w"], rtol=1e-5)

    def test_single_contribution(self):
        tree = TreeAggregator(arity=4)
        result = fold_all(tree, [(3.0, 10)])
        np.testing.assert_allclose(result.data["w"], np.full((3, 3), 3.0))

    def test_contributors_are_real_client_names(self):
        tree = TreeAggregator(arity=2)
        result = fold_all(tree, [(float(i), 10) for i in range(9)])
        assert result.meta["contributors"] == [f"site-{i}" for i in range(9)]


class TestTreeShape:
    def test_depth_is_logarithmic(self):
        ctx = FLContext()
        tree = TreeAggregator(arity=4)
        for i in range(256):
            tree.accept(update(1.0), f"site-{i}", ctx)
        # 256 = 4^4 leaves cascade through at most 4 + 1 levels
        assert tree.depth <= 5

    def test_duplicate_contributor_rejected(self):
        ctx = FLContext()
        tree = TreeAggregator(arity=4)
        assert tree.accept(update(1.0), "site-0", ctx)
        assert not tree.accept(update(2.0), "site-0", ctx)

    def test_empty_tree_raises(self):
        with pytest.raises(RuntimeError, match="nothing to aggregate"):
            TreeAggregator().aggregate(FLContext())

    def test_reset_clears_everything(self):
        ctx = FLContext()
        tree = TreeAggregator(arity=2)
        for i in range(5):
            tree.accept(update(1.0), f"site-{i}", ctx)
        tree.reset()
        assert tree.depth == 0
        assert tree.contributors == []
        with pytest.raises(RuntimeError):
            tree.aggregate(ctx)


class TestTreeMaterialization:
    def test_stash_nodes_stay_bounded(self):
        # flat coordinate-median stashes all n updates; the tree caps live
        # stash entries at O(arity * depth)
        n, arity = 64, 4
        ctx = FLContext()

        flat = CoordinateMedianAggregator()
        flat.tracker = MaterializationTracker()
        for i in range(n):
            flat.accept(update(float(i)), f"site-{i}", ctx)
        flat.aggregate(ctx)
        assert flat.tracker.peak == n

        tree = TreeAggregator(arity=arity,
                              node_factory=CoordinateMedianAggregator)
        tree.tracker = MaterializationTracker()
        for i in range(n):
            tree.accept(update(float(i)), f"site-{i}", ctx)
        tree.aggregate(ctx)
        # 64 leaves at arity 4 -> 4 levels; each holds < arity entries live
        assert tree.tracker.peak <= arity * 4
        assert tree.tracker.peak < flat.tracker.peak

    def test_median_of_medians_is_approximate_but_sane(self):
        updates = [(float(i), 10) for i in range(27)]
        tree = TreeAggregator(arity=3, node_factory=CoordinateMedianAggregator)
        result = fold_all(tree, updates)
        exact = np.median([float(i) for i in range(27)])
        assert abs(float(result.data["w"][0, 0]) - exact) <= 5.0
