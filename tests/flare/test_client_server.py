"""Registration handshake and client task processing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import (
    DXO,
    AuthenticationError,
    DataKind,
    ExcludeVars,
    FLServer,
    FederatedClient,
    MessageBus,
    Provisioner,
    ReservedKey,
    ReturnCode,
    TaskName,
    default_project,
    from_dxo,
    generate_keypair,
    sign,
    to_dxo,
)

from .helpers import ToyLearner, toy_weights


@pytest.fixture()
def world():
    project = default_project(n_clients=2, name="test")
    kits = Provisioner(project, seed=0, key_bits=512).provision()
    bus = MessageBus()
    server = FLServer(kits["server"], bus, seed=0)
    clients = [FederatedClient(kits[f"site-{i}"], ToyLearner(f"site-{i}"), bus)
               for i in (1, 2)]
    return server, clients, kits, bus


def train_task(weights_value=0.0, round_number=0):
    task = from_dxo(DXO(DataKind.WEIGHTS, data=toy_weights(weights_value)))
    task.set_header(ReservedKey.ROUND_NUMBER, round_number)
    task.set_header(ReservedKey.TASK_NAME, TaskName.TRAIN)
    return task


class TestRegistration:
    def test_successful_handshake(self, world):
        server, clients, _, bus = world
        token = clients[0].register(server)
        assert server.tokens["site-1"] == token
        assert bus.session_key("site-1") is not None
        assert clients[0].learner.initialized

    def test_tokens_unique_per_client(self, world):
        server, clients, _, _ = world
        tokens = {client.register(server) for client in clients}
        assert len(tokens) == 2

    def test_foreign_certificate_rejected(self, world):
        server, _, kits, bus = world
        foreign_kits = Provisioner(default_project(n_clients=1, name="evil"),
                                   seed=99, key_bits=512).provision()
        intruder = FederatedClient(foreign_kits["site-1"], ToyLearner("x"), bus)
        with pytest.raises(AuthenticationError, match="CA"):
            intruder.register(server)

    def test_stolen_certificate_fails_proof(self, world):
        """An attacker holding site-1's cert but not its key must fail."""
        server, _, kits, _ = world
        nonce = server.issue_nonce("site-1")
        attacker_key = generate_keypair(bits=512, seed=1234)
        bad_proof = sign(nonce, attacker_key)
        with pytest.raises(AuthenticationError, match="proof"):
            server.register_client(kits["site-1"].certificate, nonce, bad_proof)

    def test_replayed_nonce_rejected(self, world):
        server, _, kits, _ = world
        kit = kits["site-1"]
        nonce = server.issue_nonce("site-1")
        proof = sign(nonce, kit.keypair)
        server.register_client(kit.certificate, nonce, proof)
        with pytest.raises(AuthenticationError, match="nonce"):
            server.register_client(kit.certificate, nonce, proof)

    def test_unregistered_client_cannot_be_tasked(self, world):
        server, clients, _, _ = world
        with pytest.raises(AuthenticationError, match="not registered"):
            server.broadcast_task(TaskName.TRAIN, train_task(), ["site-1"])


class TestTaskProcessing:
    def test_train_task_returns_updated_weights(self, world):
        server, clients, _, _ = world
        client = clients[0]
        client.register(server)
        reply = client.process_task(TaskName.TRAIN, train_task(weights_value=1.0))
        assert reply.return_code == ReturnCode.OK
        dxo = to_dxo(reply)
        np.testing.assert_allclose(dxo.data["layer.weight"], 2.0)  # +delta
        assert dxo.get_meta_prop("train_seconds") is not None

    def test_validate_task(self, world):
        server, clients, _, _ = world
        client = clients[0]
        client.register(server)
        reply = client.process_task(TaskName.VALIDATE, train_task(weights_value=3.0))
        metrics = to_dxo(reply)
        assert metrics.data["valid_acc"] == pytest.approx(3.0)

    def test_unknown_task(self, world):
        server, clients, _, _ = world
        clients[0].register(server)
        reply = clients[0].process_task("destroy", train_task())
        assert reply.return_code == ReturnCode.TASK_UNKNOWN

    def test_missing_payload(self, world):
        from repro.flare import Shareable

        server, clients, _, _ = world
        clients[0].register(server)
        reply = clients[0].process_task(TaskName.TRAIN, Shareable())
        assert reply.return_code == ReturnCode.BAD_TASK_DATA

    def test_learner_exception_becomes_return_code(self, world):
        server, clients, _, bus = world
        kit = clients[0].kit
        failing = FederatedClient(kit, ToyLearner("site-1", fail_on_round=0), bus)
        failing.register(server)
        reply = failing.process_task(TaskName.TRAIN, train_task(round_number=0))
        assert reply.return_code == ReturnCode.EXECUTION_EXCEPTION

    def test_result_filters_applied(self, world):
        server, clients, _, bus = world
        kit = clients[0].kit
        filtered = FederatedClient(kit, ToyLearner("site-1"), bus,
                                   task_result_filters=[ExcludeVars(["layer.bias"])])
        filtered.register(server)
        reply = filtered.process_task(TaskName.TRAIN, train_task())
        assert "layer.bias" not in to_dxo(reply).data

    def test_roundtrip_over_bus(self, world):
        server, clients, _, bus = world
        client = clients[0]
        client.register(server)
        server.broadcast_task(TaskName.TRAIN, train_task(weights_value=0.0),
                              ["site-1"])
        assert client.poll_once(timeout=2.0)
        sender, reply = server.collect_results(1, timeout=2.0)[0]
        assert sender == "site-1"
        np.testing.assert_allclose(to_dxo(reply).data["layer.weight"], 1.0)

    def test_serve_before_register_rejected(self, world):
        _, clients, _, _ = world
        with pytest.raises(RuntimeError, match="register"):
            clients[0].serve_in_thread()
