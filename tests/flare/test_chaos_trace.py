"""Chaos: a worker process dying mid-round must not corrupt the merged trace.

The streaming design's crash contract:

- everything a worker flushed before dying (earlier rounds' spans, its
  cumulative metrics) survives in the parent's merged ``trace.jsonl``;
- the spans it had open when it died are finalized by the parent as
  ``status: "aborted"`` records (no ``t_end``), so the crash is visible
  in the timeline instead of silently missing;
- the run itself completes under quorum, and the report CLI still
  renders the run directory.

The crash is a real one: the learner calls ``os._exit`` mid-task, taking
the whole forked worker down with no goodbye delta and no Python-level
cleanup.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.flare import FLJob, SimulatorRunner
from repro.obs.report import load_trace_events, render_report

from .helpers import ToyLearner, toy_weights

pytestmark = pytest.mark.chaos

CRASH_SITE = "site-2"


class CrashingLearner(ToyLearner):
    """Round 0 trains normally; round 1 lingers past one flush, then dies."""

    def train(self, dxo, fl_ctx):
        round_number = int(fl_ctx.get_prop("current_round", 0))
        if self.site_name == CRASH_SITE and round_number == 1:
            # stay inside the open client_task long enough for the worker's
            # exporter (interval 0.15s) to stream a delta reporting it open
            time.sleep(0.6)
            os._exit(13)
        return super().train(dxo, fl_ctx)


@pytest.fixture(scope="module")
def crashed_run(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("chaos-trace")
    job = FLJob(name="chaos-trace", initial_weights=toy_weights(0.0),
                learner_factory=lambda name: CrashingLearner(name, delta=1.0),
                num_rounds=3, min_clients=1, result_timeout=5.0,
                max_failed_rounds=2,
                evaluator=lambda w: {"valid_acc": float(np.mean(w["layer.weight"]))})
    result = SimulatorRunner(job, n_clients=2, seed=0, run_dir=run_dir,
                             transport="socket", telemetry=True,
                             telemetry_flush=0.15).run()
    return result, load_trace_events(run_dir / "trace.jsonl")


class TestCrashForensics:
    def test_run_completes_without_the_crashed_site(self, crashed_run):
        result, _ = crashed_run
        assert result.stats.num_rounds == 3
        assert any(CRASH_SITE in r.dropped_clients
                   for r in result.stats.rounds[1:])
        contributors = [c.client for r in result.stats.rounds[1:]
                        for c in r.client_records]
        assert CRASH_SITE not in contributors

    def test_pre_crash_spans_survive(self, crashed_run):
        _, events = crashed_run
        closed = [e for e in events if "span_id" in e and e.get("t_end")]
        round0_tasks = [e for e in closed if e["name"] == "client_task"
                        and e.get("attrs", {}).get("round") == 0]
        assert {e["process"] for e in round0_tasks} == {"site-1", CRASH_SITE}

    def test_crashed_span_marked_aborted(self, crashed_run):
        _, events = crashed_run
        aborted = [e for e in events if e.get("status") == "aborted"]
        assert aborted, "no aborted spans recorded for the crashed worker"
        assert {e["process"] for e in aborted} == {CRASH_SITE}
        crashed_task = next(e for e in aborted if e["name"] == "client_task")
        assert crashed_task["attrs"]["round"] == 1
        assert crashed_task["t_end"] is None

    def test_survivor_keeps_streaming_after_the_crash(self, crashed_run):
        _, events = crashed_run
        later = [e for e in events if "span_id" in e
                 and e["name"] == "client_task"
                 and e.get("attrs", {}).get("round") == 2]
        assert [e["process"] for e in later] == ["site-1"]

    def test_report_renders_crashed_run(self, crashed_run):
        result, _ = crashed_run
        text = render_report(result.run_dir)
        assert "client_task" in text

    def test_single_end_footer_despite_crash(self, crashed_run):
        _, events = crashed_run
        assert sum(1 for e in events if e.get("event") == "end") == 1
