"""RSA, certificates and HMAC session signing."""

from __future__ import annotations

import pytest

from repro.flare import (
    CertificateAuthority,
    generate_keypair,
    hmac_sign,
    hmac_verify,
    sign,
    verify,
)
from repro.flare.security import _is_probable_prime, _random_prime

import numpy as np


class TestPrimes:
    def test_known_primes(self):
        rng = np.random.default_rng(0)
        for p in (2, 3, 5, 101, 7919, (1 << 61) - 1):
            assert _is_probable_prime(p, rng)

    def test_known_composites(self):
        rng = np.random.default_rng(0)
        for c in (1, 4, 100, 7917, 561, 41041):  # incl. Carmichael numbers
            assert not _is_probable_prime(c, rng)

    def test_random_prime_bit_length(self):
        rng = np.random.default_rng(1)
        p = _random_prime(128, rng)
        assert p.bit_length() == 128 and p % 2 == 1


class TestRSA:
    def test_sign_verify(self):
        kp = generate_keypair(bits=512, seed=1)
        sig = sign(b"payload", kp)
        assert verify(b"payload", sig, kp.public)

    def test_tampered_message_fails(self):
        kp = generate_keypair(bits=512, seed=2)
        sig = sign(b"payload", kp)
        assert not verify(b"Payload", sig, kp.public)

    def test_wrong_key_fails(self):
        kp1 = generate_keypair(bits=512, seed=3)
        kp2 = generate_keypair(bits=512, seed=4)
        sig = sign(b"m", kp1)
        assert not verify(b"m", sig, kp2.public)

    def test_keypair_deterministic_by_seed(self):
        assert generate_keypair(bits=512, seed=5).n == generate_keypair(bits=512, seed=5).n

    def test_modulus_size(self):
        kp = generate_keypair(bits=512, seed=6)
        assert kp.n.bit_length() >= 511

    def test_too_small_modulus_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(bits=64)


class TestCertificates:
    def test_issue_and_verify(self):
        ca = CertificateAuthority(bits=512, seed=7)
        kp = generate_keypair(bits=512, seed=8)
        cert = ca.issue("site-1", "clinic-1", "client", kp.public)
        assert ca.verify_certificate(cert)

    def test_forged_subject_fails(self):
        ca = CertificateAuthority(bits=512, seed=9)
        kp = generate_keypair(bits=512, seed=10)
        cert = ca.issue("site-1", "clinic-1", "client", kp.public)
        from dataclasses import replace

        forged = replace(cert, subject="site-99")
        assert not ca.verify_certificate(forged)

    def test_certificate_from_other_ca_fails(self):
        ca1 = CertificateAuthority(bits=512, seed=11)
        ca2 = CertificateAuthority(bits=512, seed=12)
        kp = generate_keypair(bits=512, seed=13)
        cert = ca2.issue("site-1", "c", "client", kp.public)
        assert not ca1.verify_certificate(cert)


class TestHMAC:
    def test_sign_verify(self):
        assert hmac_verify(b"data", hmac_sign(b"data", b"key"), b"key")

    def test_tamper_fails(self):
        assert not hmac_verify(b"datA", hmac_sign(b"data", b"key"), b"key")

    def test_wrong_key_fails(self):
        assert not hmac_verify(b"data", hmac_sign(b"data", b"key"), b"other")
