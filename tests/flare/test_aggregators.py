"""Aggregators: weighted FedAvg semantics and FedOpt."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flare import (
    DXO,
    DataKind,
    FLContext,
    FedOptAggregator,
    InTimeAccumulateWeightedAggregator,
    MetaKey,
)


def ctx():
    c = FLContext(identity="server")
    c.set_prop("current_round", 0)
    return c


def weights_dxo(value: float, steps: float = 1.0, kind=DataKind.WEIGHTS):
    return DXO(kind, data={"w": np.full(3, value, dtype=np.float64)},
               meta={MetaKey.NUM_STEPS_CURRENT_ROUND: steps})


class TestWeightedAggregator:
    def test_equal_weights_is_mean(self):
        agg = InTimeAccumulateWeightedAggregator()
        agg.reset()
        agg.accept(weights_dxo(1.0), "a", ctx())
        agg.accept(weights_dxo(3.0), "b", ctx())
        out = agg.aggregate(ctx())
        np.testing.assert_allclose(out.data["w"], 2.0)

    def test_weighted_mean(self):
        agg = InTimeAccumulateWeightedAggregator()
        agg.reset()
        agg.accept(weights_dxo(0.0, steps=3.0), "a", ctx())
        agg.accept(weights_dxo(4.0, steps=1.0), "b", ctx())
        np.testing.assert_allclose(agg.aggregate(ctx()).data["w"], 1.0)

    def test_duplicate_contributor_rejected(self):
        agg = InTimeAccumulateWeightedAggregator()
        agg.reset()
        assert agg.accept(weights_dxo(1.0), "a", ctx())
        assert not agg.accept(weights_dxo(2.0), "a", ctx())
        np.testing.assert_allclose(agg.aggregate(ctx()).data["w"], 1.0)

    def test_wrong_kind_rejected(self):
        agg = InTimeAccumulateWeightedAggregator(expected_data_kind=DataKind.WEIGHTS)
        agg.reset()
        assert not agg.accept(weights_dxo(1.0, kind=DataKind.WEIGHT_DIFF), "a", ctx())

    def test_nonpositive_weight_rejected(self):
        agg = InTimeAccumulateWeightedAggregator()
        agg.reset()
        assert not agg.accept(weights_dxo(1.0, steps=0.0), "a", ctx())

    def test_mismatched_keys_rejected(self):
        agg = InTimeAccumulateWeightedAggregator()
        agg.reset()
        agg.accept(weights_dxo(1.0), "a", ctx())
        other = DXO(DataKind.WEIGHTS, data={"v": np.ones(3)},
                    meta={MetaKey.NUM_STEPS_CURRENT_ROUND: 1})
        assert not agg.accept(other, "b", ctx())

    def test_empty_aggregate_raises(self):
        agg = InTimeAccumulateWeightedAggregator()
        agg.reset()
        with pytest.raises(RuntimeError):
            agg.aggregate(ctx())

    def test_reset_clears(self):
        agg = InTimeAccumulateWeightedAggregator()
        agg.accept(weights_dxo(1.0), "a", ctx())
        agg.reset()
        assert agg.contributors == []
        with pytest.raises(RuntimeError):
            agg.aggregate(ctx())

    def test_output_float32(self):
        agg = InTimeAccumulateWeightedAggregator()
        agg.reset()
        agg.accept(weights_dxo(1.0), "a", ctx())
        assert agg.aggregate(ctx()).data["w"].dtype == np.float32

    def test_invalid_expected_kind(self):
        with pytest.raises(ValueError):
            InTimeAccumulateWeightedAggregator(expected_data_kind=DataKind.METRICS)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.floats(-100, 100), st.floats(0.1, 50)),
                    min_size=1, max_size=8))
    def test_property_weighted_mean(self, contributions):
        agg = InTimeAccumulateWeightedAggregator()
        agg.reset()
        for index, (value, weight) in enumerate(contributions):
            agg.accept(weights_dxo(value, steps=weight), f"c{index}", ctx())
        expected = (sum(v * w for v, w in contributions)
                    / sum(w for _, w in contributions))
        np.testing.assert_allclose(agg.aggregate(ctx()).data["w"],
                                   expected, rtol=1e-4, atol=1e-4)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(-50, 50), st.integers(2, 6))
    def test_property_identical_inputs_fixed_point(self, value, n):
        agg = InTimeAccumulateWeightedAggregator()
        agg.reset()
        for index in range(n):
            agg.accept(weights_dxo(value), f"c{index}", ctx())
        np.testing.assert_allclose(agg.aggregate(ctx()).data["w"], value,
                                   rtol=1e-5, atol=1e-5)


class TestFedOpt:
    def test_requires_diff_kind(self):
        agg = FedOptAggregator()
        agg.reset()
        assert not agg.accept(weights_dxo(1.0, kind=DataKind.WEIGHTS), "a", ctx())

    def test_first_step_magnitude_is_server_lr(self):
        agg = FedOptAggregator(server_lr=0.5)
        agg.reset()
        agg.accept(weights_dxo(2.0, kind=DataKind.WEIGHT_DIFF), "a", ctx())
        out = agg.aggregate(ctx())
        assert out.data_kind == DataKind.WEIGHT_DIFF
        np.testing.assert_allclose(out.data["w"], 0.5, atol=1e-4)

    def test_direction_follows_mean_diff(self):
        agg = FedOptAggregator(server_lr=1.0)
        agg.reset()
        agg.accept(weights_dxo(-3.0, kind=DataKind.WEIGHT_DIFF), "a", ctx())
        out = agg.aggregate(ctx())
        assert np.all(out.data["w"] < 0)

    def test_bad_server_lr(self):
        with pytest.raises(ValueError):
            FedOptAggregator(server_lr=0.0)
