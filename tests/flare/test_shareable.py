"""Shareable envelope."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import (
    DXO,
    DataKind,
    ReservedKey,
    ReturnCode,
    Shareable,
    from_dxo,
    make_reply,
    to_dxo,
)


def test_headers():
    s = Shareable()
    s.set_header("k", 1)
    assert s.get_header("k") == 1
    assert s.get_header("missing", "d") == "d"


def test_default_return_code_ok():
    assert Shareable().return_code == ReturnCode.OK


def test_set_return_code():
    s = make_reply(ReturnCode.EXECUTION_EXCEPTION)
    assert s.return_code == ReturnCode.EXECUTION_EXCEPTION


def test_task_name_and_round():
    s = Shareable()
    s.set_header(ReservedKey.TASK_NAME, "train")
    s.set_header(ReservedKey.ROUND_NUMBER, 4)
    assert s.task_name == "train" and s.current_round == 4


def test_dxo_roundtrip_through_shareable():
    dxo = DXO(DataKind.WEIGHTS, data={"w": np.ones(3)}, meta={"site": "s1"})
    s = from_dxo(dxo)
    restored = to_dxo(s)
    np.testing.assert_array_equal(restored.data["w"], np.ones(3))
    assert restored.meta["site"] == "s1"


def test_to_dxo_without_payload_raises():
    with pytest.raises(ValueError, match="DXO"):
        to_dxo(Shareable())


def test_shareable_is_dict():
    s = Shareable({"a": 1})
    assert dict(s) == {"a": 1}
