"""DXO data-exchange object and its wire codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.flare import DXO, DataKind, MetaKey


def weights_dxo():
    return DXO(data_kind=DataKind.WEIGHTS,
               data={"layer.weight": np.arange(6, dtype=np.float32).reshape(2, 3),
                     "layer.bias": np.zeros(3)},
               meta={MetaKey.NUM_STEPS_CURRENT_ROUND: 40, "site": "site-1"})


class TestBasics:
    def test_meta_props(self):
        dxo = weights_dxo()
        assert dxo.get_meta_prop("site") == "site-1"
        assert dxo.get_meta_prop("missing", 7) == 7
        dxo.set_meta_prop("x", 1)
        assert dxo.meta["x"] == 1

    def test_data_must_be_mapping(self):
        with pytest.raises(TypeError):
            DXO(DataKind.WEIGHTS, data=[1, 2])

    def test_validate_ok(self):
        weights_dxo().validate()

    def test_validate_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            DXO("GIBBERISH", data={}).validate()

    def test_validate_rejects_non_array_weights(self):
        with pytest.raises(TypeError):
            DXO(DataKind.WEIGHTS, data={"w": 3.0}).validate()

    def test_metrics_allow_scalars(self):
        DXO(DataKind.METRICS, data={"acc": 0.9}).validate()


class TestWireCodec:
    def test_roundtrip_arrays_and_meta(self):
        dxo = weights_dxo()
        restored = DXO.from_bytes(dxo.to_bytes())
        assert restored.data_kind == DataKind.WEIGHTS
        assert restored.meta == dxo.meta
        np.testing.assert_array_equal(restored.data["layer.weight"],
                                      dxo.data["layer.weight"])

    def test_roundtrip_scalars(self):
        dxo = DXO(DataKind.METRICS, data={"acc": 0.91, "n": 12, "name": "x",
                                          "flag": True, "none": None})
        restored = DXO.from_bytes(dxo.to_bytes())
        assert restored.data == dxo.data

    def test_dtype_and_shape_preserved(self):
        dxo = DXO(DataKind.WEIGHTS, data={"w": np.ones((2, 3, 4), dtype=np.float32)})
        w = DXO.from_bytes(dxo.to_bytes()).data["w"]
        assert w.dtype == np.float32 and w.shape == (2, 3, 4)

    def test_numpy_scalars_coerced(self):
        dxo = DXO(DataKind.METRICS, data={"acc": np.float64(0.5), "n": np.int64(3)})
        restored = DXO.from_bytes(dxo.to_bytes())
        assert restored.data["acc"] == 0.5 and restored.data["n"] == 3

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            DXO.from_bytes(b"NOPE" + b"\x00" * 10)

    def test_unserializable_payload_rejected(self):
        with pytest.raises(TypeError):
            DXO(DataKind.COLLECTION, data={"f": object()}).to_bytes()

    def test_empty_data(self):
        restored = DXO.from_bytes(DXO(DataKind.METRICS, data={}).to_bytes())
        assert restored.data == {}

    @settings(max_examples=25, deadline=None)
    @given(hnp.arrays(dtype=np.float32,
                      shape=hnp.array_shapes(max_dims=3, max_side=6),
                      elements=st.floats(-1e5, 1e5, width=32)))
    def test_property_array_roundtrip(self, array):
        dxo = DXO(DataKind.WEIGHTS, data={"w": array})
        np.testing.assert_array_equal(DXO.from_bytes(dxo.to_bytes()).data["w"], array)
