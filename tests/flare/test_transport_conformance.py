"""Bus-conformance suite: one contract, every fabric.

Each test runs against a *fabric* — a deployment of Transport nodes hosting
a "server" and a "site-1" endpoint with session keys installed on both
sides.  The memory fabric is a single :class:`MessageBus` node; the socket
fabric is a hub node plus a spoke node joined over TCP loopback, so every
assertion here exercises real frames on the wire; the shm fabric is one
:class:`ShmMessageBus` whose bodies cross mmap'd segments.  Whatever
behaviour this suite pins is the contract the simulator (and everything
above the Transport seam) may rely on, regardless of transport selection.
"""

from __future__ import annotations

import pytest

from repro.flare import (
    FaultPlan,
    FaultyMessageBus,
    MessageBus,
    ReceiveTimeout,
    RetryPolicy,
    Shareable,
    ShmMessageBus,
    SignatureError,
    SocketMessageBus,
    TransportError,
    send_with_retry,
)

SERVER = "server"
CLIENT = "site-1"
SERVER_KEY = b"s" * 32
CLIENT_KEY = b"c" * 32


class Fabric:
    """A deployed set of transport nodes hosting SERVER and CLIENT."""

    def __init__(self, kind: str, server_bus, client_bus, nodes) -> None:
        self.kind = kind
        self.server_bus = server_bus  # node hosting the SERVER endpoint
        self.client_bus = client_bus  # node hosting the CLIENT endpoint
        self.nodes = nodes

    def bus_for(self, name: str):
        return self.server_bus if name == SERVER else self.client_bus

    def close(self) -> None:
        for node in self.nodes:
            node.close()


def _install_keys(bus) -> None:
    bus.install_session_key(SERVER, SERVER_KEY)
    bus.install_session_key(CLIENT, CLIENT_KEY)


def make_fabric(kind: str, fault_plan: FaultPlan | None = None) -> Fabric:
    if kind == "memory":
        bus = (FaultyMessageBus(fault_plan) if fault_plan is not None
               else MessageBus())
        bus.register_endpoint(SERVER)
        bus.register_endpoint(CLIENT)
        _install_keys(bus)
        return Fabric(kind, bus, bus, [bus])
    if kind == "shm":
        # inline_limit=0 forces every body through an mmap'd segment, so
        # the whole contract is exercised on the zero-copy path
        bus = ShmMessageBus(fault_plan=fault_plan, inline_limit=0)
        bus.register_endpoint(SERVER)
        bus.register_endpoint(CLIENT)
        _install_keys(bus)
        return Fabric(kind, bus, bus, [bus])
    hub = SocketMessageBus(fault_plan=fault_plan)
    hub.register_endpoint(SERVER)
    hub.register_peer(CLIENT)
    _install_keys(hub)
    spoke = SocketMessageBus.connect(hub.address, fault_plan=fault_plan)
    spoke.register_endpoint(CLIENT)
    spoke.register_peer(SERVER)
    _install_keys(spoke)
    hub.wait_for_endpoints([CLIENT], timeout=10.0)
    # close the spoke first: its BYE beats the hub tearing the link down
    return Fabric(kind, hub, spoke, [spoke, hub])


@pytest.fixture(params=["memory", "socket", "shm"])
def fabric(request):
    deployed = make_fabric(request.param)
    yield deployed
    deployed.close()


def payload(tag: str) -> Shareable:
    shareable = Shareable({"tag": tag})
    shareable["DXO"] = f"body-{tag}".encode("utf-8")
    return shareable


class TestConformance:
    def test_roundtrip_both_directions(self, fabric):
        fabric.server_bus.send_shareable(SERVER, CLIENT, "task", payload("down"))
        sender, topic, received = fabric.client_bus.receive(CLIENT, timeout=5.0)
        assert (sender, topic) == (SERVER, "task")
        assert received["tag"] == "down"
        assert received["DXO"] == b"body-down"

        fabric.client_bus.send_shareable(CLIENT, SERVER, "task:result",
                                         payload("up"))
        sender, topic, received = fabric.server_bus.receive(SERVER, timeout=5.0)
        assert (sender, topic) == (CLIENT, "task:result")
        assert received["DXO"] == b"body-up"

    def test_fifo_ordering_per_pair(self, fabric):
        for index in range(8):
            fabric.server_bus.send_shareable(SERVER, CLIENT, f"t{index}",
                                             payload(str(index)))
        topics = [fabric.client_bus.receive(CLIENT, timeout=5.0)[1]
                  for _ in range(8)]
        assert topics == [f"t{index}" for index in range(8)]

    def test_receive_timeout_carries_context(self, fabric):
        with pytest.raises(ReceiveTimeout) as excinfo:
            fabric.client_bus.receive(CLIENT, timeout=0.05, topic="task",
                                      peer=SERVER)
        timeout = excinfo.value
        assert timeout.endpoint == CLIENT
        assert timeout.topic == "task"
        assert timeout.peer == SERVER
        assert "expected topic 'task' from 'server'" in str(timeout)

    def test_resend_same_msg_id_delivered_once(self, fabric):
        bus = fabric.client_bus
        msg_id = bus.next_msg_id(CLIENT)
        for attempt in range(2):
            bus.send_shareable(CLIENT, SERVER, "task:result", payload("once"),
                               msg_id=msg_id, attempt=attempt)
        sender, topic, _ = fabric.server_bus.receive(SERVER, timeout=5.0)
        assert (sender, topic) == (CLIENT, "task:result")
        with pytest.raises(ReceiveTimeout):
            fabric.server_bus.receive(SERVER, timeout=0.3)
        assert fabric.server_bus.duplicates_dropped == 1
        assert bus.retry_count == 1  # the attempt=1 resend

    def test_signature_rejection(self, fabric):
        fabric.server_bus.send_shareable(SERVER, CLIENT, "task", payload("x"))
        # the receiving node holds a stale key for the sender
        fabric.client_bus.install_session_key(SERVER, b"z" * 32)
        with pytest.raises(SignatureError, match="signature"):
            fabric.client_bus.receive(CLIENT, timeout=5.0)

    def test_unsigned_sender_rejected_at_send(self, fabric):
        fabric.server_bus.register_peer("ghost")
        with pytest.raises(TransportError, match="no session key"):
            fabric.server_bus.send_shareable("ghost", CLIENT, "task",
                                             payload("x"))

    def test_unknown_recipient_rejected_by_routing_owner(self, fabric):
        # the hub owns the routing table; a spoke defers to its judgement
        with pytest.raises(TransportError, match="unknown recipient"):
            fabric.server_bus.send_shareable(SERVER, "ghost", "task",
                                             payload("x"))

    def test_send_with_retry_healthy_uses_one_attempt(self, fabric):
        attempts = send_with_retry(fabric.client_bus, CLIENT, SERVER,
                                   "task:result", payload("ok"))
        assert attempts == 1
        sender, topic, _ = fabric.server_bus.receive(SERVER, timeout=5.0)
        assert (sender, topic) == (CLIENT, "task:result")

    def test_delivery_metrics_accounted(self, fabric):
        fabric.server_bus.send_shareable(SERVER, CLIENT, "task", payload("m"))
        fabric.client_bus.receive(CLIENT, timeout=5.0)
        assert fabric.server_bus.delivered_count >= 1
        assert fabric.server_bus.delivered_bytes > 0


class TestConformanceUnderFaults:
    """send_with_retry semantics on a lossy fabric, both transports."""

    @pytest.fixture(params=["memory", "socket", "shm"])
    def lossy(self, request):
        plan = FaultPlan(seed=11, drop_prob=1.0)
        deployed = make_fabric(request.param, fault_plan=plan)
        yield deployed
        deployed.close()

    def test_send_with_retry_exhausts_attempts(self, lossy):
        policy = RetryPolicy(max_attempts=3, base_delay=0.001)
        with pytest.raises(TransportError, match="after 3 attempt"):
            send_with_retry(lossy.client_bus, CLIENT, SERVER, "task:result",
                            payload("doomed"), policy)
        failures = lossy.client_bus.metrics.counter(
            "transport.send_failures", topic="task:result")
        assert int(failures.value) == 3
