"""Wire-compression filters: round-trip fidelity through the real codec.

Every filter is exercised inside a FilterChain *and* through a full
encode→decode cycle (DXO → bytes → DXO), because that is how it runs in
production: the transforming side serializes, the restoring side gets
read-only views off the blob.  Lossless filters must restore dtype, shape,
data_kind and every value bit-exactly; fp16 and top-k are held to their
documented error bounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import (
    DXO,
    CompressionConfig,
    DataKind,
    DeltaDecode,
    DeltaEncode,
    ExcludeVars,
    FilterChain,
    FLContext,
    Float16Dequantize,
    Float16Quantize,
    GaussianPrivacy,
    MetaKey,
    NormClipPrivacy,
    PercentilePrivacy,
    ReservedKey,
    TopKDensify,
    TopKSparsify,
)

RNG = np.random.default_rng(42)

PAYLOAD = {
    "dense.weight": RNG.normal(size=(32, 16)).astype(np.float32),
    "dense.bias": RNG.normal(size=16).astype(np.float64),
    "step": np.array(7, dtype=np.int64),            # 0-d
    "empty": np.zeros((0, 3), dtype=np.float32),    # empty
    "mask": RNG.integers(0, 2, size=8).astype(bool),
}


def wire_roundtrip(dxo: DXO) -> DXO:
    """Serialize with the default (raw) codec and decode, as the bus does."""
    return DXO.from_bytes(dxo.to_bytes())


def make_dxo(kind: str = DataKind.WEIGHTS) -> DXO:
    return DXO(data_kind=kind,
               data={k: v.copy() for k, v in PAYLOAD.items()},
               meta={"round": 1})


def assert_payload_structure(result: DXO, reference: dict) -> None:
    assert set(result.data) == set(reference)
    for key, original in reference.items():
        decoded = np.asarray(result.data[key])
        assert decoded.dtype == original.dtype, key
        assert decoded.shape == original.shape, key


@pytest.mark.parametrize("codec", ["raw", "raw+deflate", "npz"])
def test_wire_codecs_preserve_key_order(codec):
    """Consumers iterate state dicts in order (e.g. drawing per-tensor RNG
    streams), so every codec must reconstruct the insertion order — the
    legacy npz path used to sort keys, silently desyncing such consumers
    from raw-codec runs."""
    dxo = make_dxo()
    decoded = DXO.from_bytes(dxo.to_bytes(codec=codec))
    arrays = [k for k in dxo.data if isinstance(dxo.data[k], np.ndarray)]
    assert [k for k in decoded.data if k in arrays] == arrays


# ---------------------------------------------------------------------------
# lossless filters: exact round-trip through chain + codec
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("chain_filters", [
    [],
    [Float16Dequantize()],          # no-op without quantize metadata
    [TopKDensify()],                # no-op without top-k metadata
], ids=["empty-chain", "dequantize-noop", "densify-noop"])
def test_lossless_chains_are_bit_exact(chain_filters):
    ctx = FLContext(identity="test")
    result = wire_roundtrip(FilterChain(chain_filters).process(make_dxo(), ctx))
    assert result.data_kind == DataKind.WEIGHTS
    assert_payload_structure(result, PAYLOAD)
    for key, original in PAYLOAD.items():
        np.testing.assert_array_equal(np.asarray(result.data[key]), original)


def test_delta_encode_decode_is_bit_exact():
    ctx = FLContext(identity="site-1")
    base = {k: v.copy() for k, v in PAYLOAD.items()}
    ctx.set_prop(ReservedKey.GLOBAL_MODEL, base)

    trained = DXO(DataKind.WEIGHTS,
                  data={k: (np.logical_not(v) if v.dtype == bool else v + 1)
                        for k, v in PAYLOAD.items()},
                  meta={MetaKey.MODEL_VERSION: 5})
    diff = DeltaEncode().process(trained, ctx)
    assert diff.data_kind == DataKind.WEIGHT_DIFF
    decoded = wire_roundtrip(diff)
    assert set(decoded.data) == set(PAYLOAD)
    for key, original in PAYLOAD.items():
        entry = np.asarray(decoded.data[key])
        assert entry.shape == original.shape, key
        # bool has no subtraction: its diff crosses the wire as int8
        expected_dtype = np.int8 if original.dtype == bool else original.dtype
        assert entry.dtype == expected_dtype, key

    # server side: FedAvg over diffs then apply — here a single client, so
    # applying the diff to the base must reproduce the trained weights
    for key in PAYLOAD:
        restored = (base[key] + np.asarray(decoded.data[key])
                    ).astype(base[key].dtype)
        np.testing.assert_array_equal(restored, np.asarray(trained.data[key]))


def test_downlink_delta_decode_reconstructs_and_tracks_versions():
    ctx = FLContext(identity="site-1")
    decode = DeltaDecode()
    full = DXO(DataKind.WEIGHTS, data={"w": np.ones(4, dtype=np.float32)},
               meta={MetaKey.MODEL_VERSION: 0})
    out = decode.process(wire_roundtrip(full), ctx)
    assert decode.cached_version == 0
    np.testing.assert_array_equal(out.data["w"], np.ones(4, dtype=np.float32))

    delta = DXO(DataKind.WEIGHT_DIFF, data={"w": np.full(4, 0.5, np.float32)},
                meta={MetaKey.MODEL_VERSION: 1, MetaKey.BASE_VERSION: 0})
    out = decode.process(wire_roundtrip(delta), ctx)
    assert out.data_kind == DataKind.WEIGHTS
    assert decode.cached_version == 1
    np.testing.assert_array_equal(out.data["w"], np.full(4, 1.5, np.float32))
    assert MetaKey.BASE_VERSION not in out.meta

    stale = DXO(DataKind.WEIGHT_DIFF, data={"w": np.ones(4, np.float32)},
                meta={MetaKey.MODEL_VERSION: 9, MetaKey.BASE_VERSION: 7})
    with pytest.raises(ValueError, match="full broadcast"):
        decode.process(wire_roundtrip(stale), ctx)

    renamed = DXO(DataKind.WEIGHT_DIFF, data={"other": np.ones(4, np.float32)},
                  meta={MetaKey.MODEL_VERSION: 2, MetaKey.BASE_VERSION: 1})
    with pytest.raises(ValueError, match="different parameters"):
        decode.process(wire_roundtrip(renamed), ctx)


def test_delta_encode_without_base_passes_through():
    ctx = FLContext(identity="site-1")
    dxo = make_dxo()
    out = DeltaEncode().process(dxo, ctx)
    assert out.data_kind == DataKind.WEIGHTS
    assert out is dxo


# ---------------------------------------------------------------------------
# lossy filters: structure preserved, error bounded
# ---------------------------------------------------------------------------
def test_fp16_quantize_dequantize_preserves_structure_and_bounds_error():
    ctx = FLContext(identity="test")
    chain = FilterChain([Float16Quantize()])
    quantized = wire_roundtrip(chain.process(make_dxo(), ctx))
    # on the wire: floats travel as fp16, everything else untouched
    assert np.asarray(quantized.data["dense.weight"]).dtype == np.float16
    assert np.asarray(quantized.data["dense.bias"]).dtype == np.float16
    assert np.asarray(quantized.data["step"]).dtype == np.int64
    assert np.asarray(quantized.data["mask"]).dtype == bool

    restored = Float16Dequantize().process(quantized, ctx)
    assert restored.data_kind == DataKind.WEIGHTS
    assert_payload_structure(restored, PAYLOAD)
    assert MetaKey.FP16_DTYPES not in restored.meta
    for key in ("dense.weight", "dense.bias"):
        original = PAYLOAD[key].astype(np.float64)
        decoded = np.asarray(restored.data[key]).astype(np.float64)
        # fp16 relative rounding error is 2^-11 ≈ 4.9e-4
        np.testing.assert_allclose(decoded, original, rtol=1e-3, atol=1e-4)
    np.testing.assert_array_equal(restored.data["step"], PAYLOAD["step"])
    np.testing.assert_array_equal(restored.data["mask"], PAYLOAD["mask"])


def test_topk_sparsify_densify_keeps_largest_entries_exact():
    ctx = FLContext(identity="test")
    diff = DXO(DataKind.WEIGHT_DIFF,
               data={"w": RNG.normal(size=1024).astype(np.float32),
                     "tiny": np.full(4, 3.0, dtype=np.float32),
                     "step": np.array(7, dtype=np.int64)})
    sparse = wire_roundtrip(
        TopKSparsify(ratio=0.25, min_size=256).process(diff, ctx))
    assert "w@topk_idx" in sparse.data and "w@topk_val" in sparse.data
    assert "w" not in sparse.data
    np.testing.assert_array_equal(sparse.data["tiny"], diff.data["tiny"])

    dense = TopKDensify().process(sparse, ctx)
    assert dense.data_kind == DataKind.WEIGHT_DIFF
    assert set(dense.data) == {"w", "tiny", "step"}
    restored = np.asarray(dense.data["w"])
    assert restored.dtype == np.float32 and restored.shape == (1024,)
    original = diff.data["w"]
    kept = restored != 0
    assert kept.sum() >= 1024 // 4 - 1
    np.testing.assert_array_equal(restored[kept], original[kept])
    # dropped entries are exactly the smallest magnitudes
    assert np.max(np.abs(original[~kept])) <= np.min(np.abs(original[kept]))


def test_topk_never_touches_full_weights():
    ctx = FLContext(identity="test")
    dxo = make_dxo(DataKind.WEIGHTS)
    assert TopKSparsify(ratio=0.01).process(dxo, ctx) is dxo


def test_topk_densify_missing_pair_raises():
    ctx = FLContext(identity="test")
    broken = DXO(DataKind.WEIGHT_DIFF, data={"w@topk_idx": np.arange(3)},
                 meta={MetaKey.TOPK_SPEC: {"w": {"shape": [10], "dtype": "<f4"}}})
    with pytest.raises(ValueError, match="missing"):
        TopKDensify().process(broken, ctx)


# ---------------------------------------------------------------------------
# privacy filters through the codec: structure survives serialization
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("privacy_filter", [
    ExcludeVars(["nope.*"]),
    GaussianPrivacy(sigma0=0.01, seed=3),
    PercentilePrivacy(percentile=5.0),
    NormClipPrivacy(max_norm=1e6),
], ids=["exclude", "gaussian", "percentile", "normclip"])
def test_privacy_filters_preserve_structure_through_codec(privacy_filter):
    ctx = FLContext(identity="test")
    chain = FilterChain([privacy_filter])
    result = wire_roundtrip(chain.process(make_dxo(), ctx))
    assert result.data_kind == DataKind.WEIGHTS
    assert_payload_structure(result, PAYLOAD)


def test_full_uplink_chain_composes():
    """delta → top-k → fp16 uplink vs fp16-dequant → densify server side."""
    ctx = FLContext(identity="site-1")
    config = CompressionConfig(delta=True, float16=True, top_k=0.5)
    base = {"w": np.zeros(512, dtype=np.float32)}
    ctx.set_prop(ReservedKey.GLOBAL_MODEL, base)
    trained = DXO(DataKind.WEIGHTS,
                  data={"w": RNG.normal(size=512).astype(np.float32)})

    uplink = FilterChain(config.client_result_filters()).process(trained, ctx)
    received = wire_roundtrip(uplink)
    server = FilterChain(config.server_result_filters()).process(
        received, FLContext(identity="server"))

    assert server.data_kind == DataKind.WEIGHT_DIFF
    restored = np.asarray(server.data["w"])
    assert restored.dtype == np.float32 and restored.shape == (512,)
    kept = restored != 0
    assert int(kept.sum()) == 256
    np.testing.assert_allclose(restored[kept], trained.data["w"][kept],
                               rtol=1e-3, atol=1e-4)


# ---------------------------------------------------------------------------
# CompressionConfig.from_spec
# ---------------------------------------------------------------------------
def test_from_spec_tokens():
    config = CompressionConfig.from_spec("delta+fp16+topk:0.05+deflate")
    assert config.delta and config.float16 and config.deflate
    assert config.top_k == 0.05
    assert config.wire_codec == "raw+deflate"

    config = CompressionConfig.from_spec("fp16+no-downlink-delta")
    assert config.float16 and not config.delta and not config.downlink_delta
    assert config.wire_codec == "raw"

    assert CompressionConfig.from_spec(None) is None
    passthrough = CompressionConfig(delta=False, float16=True)
    assert CompressionConfig.from_spec(passthrough) is passthrough


@pytest.mark.parametrize("bad", ["", "lz4", "delta+bogus"])
def test_from_spec_rejects_unknown_tokens(bad):
    with pytest.raises(ValueError):
        CompressionConfig.from_spec(bad)


def test_filter_chain_layout_matches_config():
    config = CompressionConfig(delta=True, float16=True, top_k=0.1)
    assert [type(f).__name__ for f in config.client_result_filters()] == \
        ["DeltaEncode", "TopKSparsify", "Float16Quantize"]
    assert [type(f).__name__ for f in config.client_task_filters()] == \
        ["Float16Dequantize", "TopKDensify", "DeltaDecode"]
    no_topk = CompressionConfig(delta=True, float16=True)
    assert [type(f).__name__ for f in no_topk.client_task_filters()] == \
        ["Float16Dequantize", "DeltaDecode"]
    assert [type(f).__name__ for f in config.server_result_filters()] == \
        ["Float16Dequantize", "TopKDensify"]
    # fresh instances every call: DeltaDecode is per-client state
    assert config.client_task_filters()[1] is not config.client_task_filters()[1]


def test_adapt_aggregator_flips_expected_kind():
    class FakeAggregator:
        expected_data_kind = DataKind.WEIGHTS

    aggregator = FakeAggregator()
    CompressionConfig(delta=True).adapt_aggregator(aggregator)
    assert aggregator.expected_data_kind == DataKind.WEIGHT_DIFF

    untouched = FakeAggregator()
    CompressionConfig(delta=False, float16=True).adapt_aggregator(untouched)
    assert untouched.expected_data_kind == DataKind.WEIGHTS
