"""Chaos over sockets: frame-codec fuzzing + fault parity across fabrics.

Two layers of hostility:

1. **Wire-level** — malformed length prefixes, bit-flipped payloads and
   mid-frame disconnects must surface as :class:`TransportError` (or die at
   HMAC verification as :class:`SignatureError`) and cost at most the
   offending connection.  Nothing here may hang or kill the node.
2. **Plan-level** — the seeded :class:`FaultPlan` scenarios from the
   in-memory chaos suite, replayed over real TCP with process-per-client
   runners.  Fault decisions hash the per-sender message-id streams, which
   are identical on both fabrics, so quorum and dropped-site behaviour must
   match round for round.
"""

from __future__ import annotations

import socket
import struct

import numpy as np
import pytest

from repro.flare import FaultPlan, FLJob, Message, SimulatorRunner, TransportError
from repro.flare.socket_transport import (
    FRAME_DATA,
    MAX_FRAME_BYTES,
    SocketMessageBus,
    decode_data_frame,
    encode_data_frame,
    encode_frame,
    read_frame,
)

from .helpers import ToyLearner, toy_weights

pytestmark = pytest.mark.chaos


def sample_message() -> Message:
    return Message(sender="site-1", recipient="server", topic="task:result",
                   body=b"\x05\x00\x00\x00{...}payload-bytes",
                   signature="ab" * 32,
                   headers={"__msg_id__": "site-1:0", "__attempt__": 0})


def frame_pipe():
    """A connected socket pair: (writer, reader)."""
    writer, reader = socket.socketpair()
    writer.settimeout(5.0)
    reader.settimeout(5.0)
    return writer, reader


class TestFrameCodecFuzz:
    def test_roundtrip(self):
        message = sample_message()
        frame = encode_data_frame(message)
        writer, reader = frame_pipe()
        try:
            writer.sendall(frame)
            frame_type, rest = read_frame(reader)
            assert frame_type == FRAME_DATA
            decoded = decode_data_frame(rest)
            assert decoded == message
        finally:
            writer.close()
            reader.close()

    def test_truncated_length_prefix(self):
        writer, reader = frame_pipe()
        try:
            writer.sendall(b"\x07\x00")  # 2 of 4 prefix bytes
            writer.close()
            with pytest.raises(TransportError, match="mid-frame"):
                read_frame(reader)
        finally:
            reader.close()

    def test_oversized_length_prefix(self):
        writer, reader = frame_pipe()
        try:
            writer.sendall(struct.pack("<I", MAX_FRAME_BYTES + 1))
            with pytest.raises(TransportError, match="cap"):
                read_frame(reader)
        finally:
            writer.close()
            reader.close()

    def test_zero_length_frame(self):
        writer, reader = frame_pipe()
        try:
            writer.sendall(struct.pack("<I", 0))
            with pytest.raises(TransportError, match="zero-length"):
                read_frame(reader)
        finally:
            writer.close()
            reader.close()

    def test_unknown_frame_type(self):
        writer, reader = frame_pipe()
        try:
            writer.sendall(struct.pack("<I", 1) + b"\xee")
            with pytest.raises(TransportError, match="unknown frame type"):
                read_frame(reader)
        finally:
            writer.close()
            reader.close()

    def test_mid_frame_disconnect(self):
        frame = encode_data_frame(sample_message())
        writer, reader = frame_pipe()
        try:
            writer.sendall(frame[:len(frame) // 2])
            writer.close()
            with pytest.raises(TransportError, match="mid-frame"):
                read_frame(reader)
        finally:
            reader.close()

    def test_clean_eof_between_frames_is_none(self):
        writer, reader = frame_pipe()
        try:
            writer.sendall(encode_frame(FRAME_DATA, b"x"))
            writer.close()
            assert read_frame(reader) is not None
            assert read_frame(reader) is None
        finally:
            reader.close()

    def test_bit_flip_fuzz_never_escapes(self):
        """Any single-byte corruption decodes to a Message or TransportError.

        A flip that survives decoding produces a different envelope whose
        HMAC cannot verify, so either way the corruption is contained.
        """
        message = sample_message()
        frame = encode_data_frame(message)
        rest = frame[5:]  # after length prefix + type byte
        rng = np.random.default_rng(29)
        positions = set(rng.integers(0, len(rest), size=200).tolist())
        positions.update(range(min(12, len(rest))))  # always hit the header len
        survived = 0
        for position in positions:
            for bit in (0x01, 0x80):
                mutated = (rest[:position]
                           + bytes([rest[position] ^ bit])
                           + rest[position + 1:])
                try:
                    decoded = decode_data_frame(mutated)
                except TransportError:
                    continue
                survived += 1
                assert decoded != message or mutated == rest
        assert survived > 0  # body flips decode fine and die at the HMAC

    def test_truncation_fuzz_never_escapes(self):
        frame = encode_data_frame(sample_message())
        rest = frame[5:]
        for cut in range(0, len(rest), 7):
            try:
                decode_data_frame(rest[:cut])
            except TransportError:
                pass  # the only acceptable failure mode


class TestHubSurvivesHostileConnections:
    def test_garbage_connection_costs_only_itself(self):
        hub = SocketMessageBus()
        try:
            hub.register_endpoint("server")
            hub.install_session_key("server", b"k" * 32)
            before = int(hub.metrics.counter("transport.frame_errors").value)

            hostile = socket.create_connection(hub.address, timeout=5.0)
            hostile.sendall(struct.pack("<I", MAX_FRAME_BYTES + 7) + b"junk")
            hostile.close()

            # a fresh, well-behaved spoke still joins and exchanges traffic
            spoke = SocketMessageBus.connect(hub.address)
            try:
                spoke.register_endpoint("site-1")
                spoke.install_session_key("site-1", b"c" * 32)
                spoke.register_peer("server")
                spoke.install_session_key("server", b"k" * 32)
                hub.register_peer("site-1")
                hub.install_session_key("site-1", b"c" * 32)
                hub.wait_for_endpoints(["site-1"], timeout=10.0)
                from repro.flare import Shareable
                spoke.send_shareable("site-1", "server", "task:result",
                                     Shareable({"ok": True}))
                sender, topic, shareable = hub.receive("server", timeout=5.0)
                assert (sender, topic) == ("site-1", "task:result")
                assert shareable["ok"] is True
            finally:
                spoke.close()
            deadline_errors = int(
                hub.metrics.counter("transport.frame_errors").value)
            assert deadline_errors >= before + 1
        finally:
            hub.close()

    def test_mid_frame_disconnect_against_live_hub(self):
        hub = SocketMessageBus()
        try:
            partial = encode_data_frame(sample_message())[:9]
            hostile = socket.create_connection(hub.address, timeout=5.0)
            hostile.sendall(partial)
            hostile.close()
            # reader thread absorbs the error; the node keeps accepting
            probe = socket.create_connection(hub.address, timeout=5.0)
            probe.close()
        finally:
            hub.close()


class TestFaultParityAcrossFabrics:
    """Same plan + same seed ⇒ same per-round outcomes on both fabrics."""

    def run_both(self, tmp_path, plan: FaultPlan, **job_kw):
        job_kw.setdefault("num_rounds", 3)
        job_kw.setdefault("min_clients", 2)
        job_kw.setdefault("result_timeout", 10.0)
        job_kw.setdefault("max_failed_rounds", 1)
        job = FLJob(name="parity", initial_weights=toy_weights(0.0),
                    learner_factory=lambda name: ToyLearner(name, delta=1.0),
                    **job_kw)
        results = {}
        for transport in ("memory", "socket"):
            runner = SimulatorRunner(job, n_clients=4, seed=0,
                                     run_dir=tmp_path / transport,
                                     transport=transport, fault_plan=plan)
            results[transport] = runner.run()
        return results["memory"], results["socket"]

    def assert_round_parity(self, memory_result, socket_result):
        memory_stats, socket_stats = memory_result.stats, socket_result.stats
        assert memory_stats.num_rounds == socket_stats.num_rounds
        for memory_round, socket_round in zip(memory_stats.rounds,
                                              socket_stats.rounds):
            assert memory_round.quorum_met == socket_round.quorum_met
            assert sorted(memory_round.dropped_clients) == \
                sorted(socket_round.dropped_clients)
        for key in memory_result.final_weights:
            np.testing.assert_array_equal(memory_result.final_weights[key],
                                          socket_result.final_weights[key])

    def test_crashed_site_dropped_identically(self, tmp_path):
        plan = FaultPlan(seed=7, crashed_clients=("site-3",))
        memory_result, socket_result = self.run_both(tmp_path, plan)
        self.assert_round_parity(memory_result, socket_result)
        assert socket_result.stats.dropped_clients == ["site-3"]

    def test_lossy_links_same_quorum_behaviour(self, tmp_path):
        plan = FaultPlan(seed=3, drop_prob=0.2, duplicate_prob=0.1)
        memory_result, socket_result = self.run_both(tmp_path, plan)
        self.assert_round_parity(memory_result, socket_result)

    def test_stragglers_and_delays_same_outcome(self, tmp_path):
        plan = FaultPlan(seed=5, delay_prob=0.3, max_delay=0.05,
                         stragglers={"site-2": 0.05})
        memory_result, socket_result = self.run_both(tmp_path, plan)
        self.assert_round_parity(memory_result, socket_result)
        assert all(record.quorum_met for record in socket_result.stats.rounds)
