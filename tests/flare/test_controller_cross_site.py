"""ScatterAndGather internals and cross-site evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import (
    CrossSiteModelEval,
    FLJob,
    FLServer,
    FederatedClient,
    GaussianPrivacy,
    InTimeAccumulateWeightedAggregator,
    MessageBus,
    Provisioner,
    ScatterAndGather,
    SimulatorRunner,
    default_project,
)

from .helpers import ToyLearner, toy_weights


@pytest.fixture()
def federation():
    project = default_project(n_clients=3, name="ctl")
    kits = Provisioner(project, seed=0, key_bits=512).provision()
    bus = MessageBus()
    server = FLServer(kits["server"], bus, seed=0)
    clients = []
    for i in (1, 2, 3):
        client = FederatedClient(kits[f"site-{i}"], ToyLearner(f"site-{i}"), bus)
        client.register(server)
        client.serve_in_thread()
        clients.append(client)
    yield server, clients
    server.stop_clients([c.name for c in clients])
    for client in clients:
        client.stop()


class TestScatterAndGather:
    def test_round_progression(self, federation):
        server, clients = federation
        controller = ScatterAndGather(
            server=server, client_names=[c.name for c in clients],
            initial_weights=toy_weights(0.0),
            aggregator=InTimeAccumulateWeightedAggregator(), num_rounds=4)
        stats = controller.run()
        assert stats.num_rounds == 4
        np.testing.assert_allclose(controller.global_weights["layer.weight"], 4.0)

    def test_client_metrics_recorded(self, federation):
        server, clients = federation
        controller = ScatterAndGather(
            server=server, client_names=[c.name for c in clients],
            initial_weights=toy_weights(),
            aggregator=InTimeAccumulateWeightedAggregator(), num_rounds=2)
        stats = controller.run()
        record = stats.rounds[0].client_records[0]
        assert record.num_steps == 10
        assert 0 < record.train_loss <= 1.0

    def test_server_result_filters_applied(self, federation):
        server, clients = federation
        noisy = GaussianPrivacy(sigma0=10.0, seed=3)
        controller = ScatterAndGather(
            server=server, client_names=[c.name for c in clients],
            initial_weights=toy_weights(0.0),
            aggregator=InTimeAccumulateWeightedAggregator(), num_rounds=1,
            result_filters=[noisy])
        controller.run()
        # aggregated weights are ~1.0 + large noise: extremely unlikely ≈1.0
        assert not np.allclose(controller.global_weights["layer.weight"], 1.0,
                               atol=1e-3)

    def test_validation_errors(self, federation):
        server, clients = federation
        with pytest.raises(ValueError):
            ScatterAndGather(server=server, client_names=[],
                             initial_weights=toy_weights(),
                             aggregator=InTimeAccumulateWeightedAggregator())
        with pytest.raises(ValueError):
            ScatterAndGather(server=server, client_names=["site-1"],
                             initial_weights=toy_weights(),
                             aggregator=InTimeAccumulateWeightedAggregator(),
                             num_rounds=0)


class TestCrossSiteEval:
    def test_matrix_of_metrics(self, federation):
        server, clients = federation
        workflow = CrossSiteModelEval(server, [c.name for c in clients])
        results = workflow.evaluate({
            "global": toy_weights(2.0),
            "site-1-best": toy_weights(5.0),
        })
        assert set(results) == {"global", "site-1-best"}
        for per_site in results.values():
            assert set(per_site) == {"site-1", "site-2", "site-3"}
        # ToyLearner.validate returns the mean weight value
        assert results["global"]["site-1"]["valid_acc"] == pytest.approx(2.0)
        assert results["site-1-best"]["site-2"]["valid_acc"] == pytest.approx(5.0)

    def test_as_matrix(self, federation):
        server, clients = federation
        workflow = CrossSiteModelEval(server, [c.name for c in clients])
        results = workflow.evaluate({"global": toy_weights(1.0)})
        models, sites, matrix = CrossSiteModelEval.as_matrix(results)
        assert models == ["global"] and len(sites) == 3
        np.testing.assert_allclose(matrix, 1.0)

    def test_requires_clients(self, federation):
        server, _ = federation
        with pytest.raises(ValueError):
            CrossSiteModelEval(server, [])
