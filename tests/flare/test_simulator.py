"""SimulatorRunner end-to-end with toy learners (threads and sequential)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import FLJob, SimulatorRunner

from .helpers import ToyLearner, toy_weights


def make_job(num_rounds=3, evaluator=None, **kw):
    learners: dict[str, ToyLearner] = {}

    def factory(name: str) -> ToyLearner:
        learners[name] = ToyLearner(name, delta=1.0)
        return learners[name]

    job = FLJob(name="toy", initial_weights=toy_weights(0.0),
                learner_factory=factory, num_rounds=num_rounds,
                evaluator=evaluator, **kw)
    return job, learners


class TestThreadedRun:
    def test_weights_advance_by_delta_per_round(self, tmp_path):
        job, _ = make_job(num_rounds=3)
        result = SimulatorRunner(job, n_clients=4, seed=0, run_dir=tmp_path).run()
        np.testing.assert_allclose(result.final_weights["layer.weight"], 3.0)

    def test_all_clients_participate_every_round(self, tmp_path):
        job, learners = make_job(num_rounds=2)
        SimulatorRunner(job, n_clients=3, seed=0, run_dir=tmp_path).run()
        assert len(learners) == 3
        for learner in learners.values():
            assert learner.seen_rounds == [0, 1]
            assert learner.finalized

    def test_tokens_issued_per_client(self, tmp_path):
        job, _ = make_job(num_rounds=1)
        result = SimulatorRunner(job, n_clients=4, seed=0, run_dir=tmp_path).run()
        assert set(result.tokens) == {f"site-{i}" for i in range(1, 5)}
        assert len(set(result.tokens.values())) == 4

    def test_stats_recorded(self, tmp_path):
        job, _ = make_job(num_rounds=2)
        result = SimulatorRunner(job, n_clients=2, seed=0, run_dir=tmp_path).run()
        stats = result.stats
        assert stats.num_rounds == 2
        assert all(len(r.client_records) == 2 for r in stats.rounds)
        assert stats.messages_delivered > 0 and stats.bytes_delivered > 0

    def test_evaluator_metrics_and_best_model(self, tmp_path):
        def evaluator(weights):
            return {"valid_acc": float(np.mean(weights["layer.weight"]))}

        job, _ = make_job(num_rounds=3, evaluator=evaluator)
        result = SimulatorRunner(job, n_clients=2, seed=0, run_dir=tmp_path).run()
        history = result.stats.global_metric_history("valid_acc")
        assert history == [1.0, 2.0, 3.0]
        np.testing.assert_allclose(result.best_weights["layer.weight"], 3.0)

    def test_log_contains_fig3_stages(self, tmp_path):
        job, _ = make_job(num_rounds=1)
        result = SimulatorRunner(job, n_clients=2, seed=0, run_dir=tmp_path).run()
        log = result.log_text
        assert "joined. Sent token:" in log
        assert "aggregating 2 update(s) at round 0" in log
        assert "Round 0 finished." in log

    def test_deterministic_tokens_by_seed(self, tmp_path):
        job1, _ = make_job(num_rounds=1)
        result1 = SimulatorRunner(job1, n_clients=2, seed=42,
                                  run_dir=tmp_path / "a").run()
        job2, _ = make_job(num_rounds=1)
        result2 = SimulatorRunner(job2, n_clients=2, seed=42,
                                  run_dir=tmp_path / "b").run()
        assert result1.tokens == result2.tokens

    def test_failing_client_aborts_when_below_min(self, tmp_path):
        def factory(name: str) -> ToyLearner:
            return ToyLearner(name, fail_on_round=1)

        job = FLJob(name="toy", initial_weights=toy_weights(),
                    learner_factory=factory, num_rounds=3)
        with pytest.raises(RuntimeError, match="usable results"):
            SimulatorRunner(job, n_clients=2, seed=0, run_dir=tmp_path).run()

    def test_failing_client_tolerated_with_min_clients(self, tmp_path):
        calls = {"n": 0}

        def factory(name: str) -> ToyLearner:
            calls["n"] += 1
            fail = 1 if calls["n"] == 1 else None  # only first client fails
            return ToyLearner(name, fail_on_round=fail)

        job = FLJob(name="toy", initial_weights=toy_weights(),
                    learner_factory=factory, num_rounds=2, min_clients=1)
        result = SimulatorRunner(job, n_clients=2, seed=0, run_dir=tmp_path).run()
        assert result.stats.num_rounds == 2


class TestSequentialRun:
    def test_matches_threaded_result(self, tmp_path):
        job1, _ = make_job(num_rounds=3)
        threaded = SimulatorRunner(job1, n_clients=2, seed=0, threads=True,
                                   run_dir=tmp_path / "t").run()
        job2, _ = make_job(num_rounds=3)
        sequential = SimulatorRunner(job2, n_clients=2, seed=0, threads=False,
                                     run_dir=tmp_path / "s").run()
        np.testing.assert_allclose(threaded.final_weights["layer.weight"],
                                   sequential.final_weights["layer.weight"])


class TestValidation:
    def test_bad_client_count(self):
        job, _ = make_job()
        with pytest.raises(ValueError):
            SimulatorRunner(job, n_clients=0)

    def test_bad_rounds(self):
        with pytest.raises(ValueError):
            FLJob(name="x", initial_weights=toy_weights(),
                  learner_factory=lambda n: ToyLearner(n), num_rounds=0)

    def test_empty_weights(self):
        with pytest.raises(ValueError):
            FLJob(name="x", initial_weights={},
                  learner_factory=lambda n: ToyLearner(n))
