"""FullModelShareableGenerator: weights ↔ shareable/DXO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import (
    DXO,
    DataKind,
    FLContext,
    FullModelShareableGenerator,
    ReservedKey,
    to_dxo,
)


def ctx(round_number=2):
    c = FLContext(identity="server")
    c.set_prop(ReservedKey.CURRENT_ROUND, round_number)
    return c


def test_learnable_to_shareable_carries_weights_and_round():
    gen = FullModelShareableGenerator()
    weights = {"a": np.ones(2), "b": np.zeros((2, 2))}
    shareable = gen.learnable_to_shareable(weights, ctx(round_number=5))
    assert shareable.get_header(ReservedKey.ROUND_NUMBER) == 5
    dxo = to_dxo(shareable)
    assert dxo.data_kind == DataKind.WEIGHTS
    np.testing.assert_array_equal(dxo.data["a"], np.ones(2))


def test_full_weights_replace():
    gen = FullModelShareableGenerator()
    current = {"a": np.zeros(2)}
    dxo = DXO(DataKind.WEIGHTS, data={"a": np.full(2, 7.0)})
    out = gen.dxo_to_learnable(dxo, current)
    np.testing.assert_array_equal(out["a"], 7.0)


def test_diff_applied_additively():
    gen = FullModelShareableGenerator()
    current = {"a": np.full(3, 10.0)}
    dxo = DXO(DataKind.WEIGHT_DIFF, data={"a": np.full(3, -1.5)})
    out = gen.dxo_to_learnable(dxo, current)
    np.testing.assert_allclose(out["a"], 8.5)


def test_diff_with_missing_key_keeps_current():
    gen = FullModelShareableGenerator()
    current = {"a": np.ones(2), "b": np.full(2, 4.0)}
    dxo = DXO(DataKind.WEIGHT_DIFF, data={"a": np.ones(2)})
    out = gen.dxo_to_learnable(dxo, current)
    np.testing.assert_allclose(out["a"], 2.0)
    np.testing.assert_allclose(out["b"], 4.0)


def test_diff_with_unknown_key_rejected():
    gen = FullModelShareableGenerator()
    dxo = DXO(DataKind.WEIGHT_DIFF, data={"zzz": np.ones(2)})
    with pytest.raises(KeyError):
        gen.dxo_to_learnable(dxo, {"a": np.ones(2)})


def test_metrics_kind_rejected():
    gen = FullModelShareableGenerator()
    with pytest.raises(ValueError):
        gen.dxo_to_learnable(DXO(DataKind.METRICS, data={}), {})


def test_shareable_roundtrip():
    gen = FullModelShareableGenerator()
    weights = {"w": np.arange(6.0).reshape(2, 3)}
    shareable = gen.learnable_to_shareable(weights, ctx())
    out = gen.shareable_to_learnable(shareable, {}, ctx())
    np.testing.assert_array_equal(out["w"], weights["w"])
