"""Run statistics container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import ClientRoundRecord, RoundRecord, RunStats


def make_stats():
    stats = RunStats()
    for round_number, acc in enumerate([0.5, 0.8, 0.7]):
        record = RoundRecord(round_number=round_number,
                             global_metrics={"valid_acc": acc})
        for client in ("site-1", "site-2"):
            record.client_records.append(ClientRoundRecord(
                client=client, round_number=round_number, train_loss=1.0,
                valid_acc=acc, num_steps=10, seconds=2.0 + round_number))
        stats.add_round(record)
    return stats


def test_history():
    assert make_stats().global_metric_history("valid_acc") == [0.5, 0.8, 0.7]


def test_best_and_final():
    stats = make_stats()
    assert stats.best_global_metric("valid_acc") == 0.8
    assert stats.final_global_metric("valid_acc") == 0.7


def test_best_metric_mode():
    stats = make_stats()
    assert stats.best_global_metric("valid_acc", mode="max") == 0.8
    assert stats.best_global_metric("valid_acc", mode="min") == 0.5
    with pytest.raises(ValueError):
        stats.best_global_metric("valid_acc", mode="average")


def test_missing_metric_raises():
    with pytest.raises(KeyError):
        make_stats().best_global_metric("f1")
    with pytest.raises(KeyError):
        make_stats().final_global_metric("f1")
    with pytest.raises(KeyError):
        make_stats().global_metric_history("f1")


def test_missing_metric_error_names_available_keys():
    with pytest.raises(KeyError, match="valid_acc"):
        make_stats().best_global_metric("f1")


def test_mean_seconds_per_local_epoch():
    assert make_stats().mean_seconds_per_local_epoch() == pytest.approx(3.0)


def test_mean_seconds_empty():
    assert RunStats().mean_seconds_per_local_epoch() == 0.0


def test_client_history():
    history = make_stats().client_metric_history("site-1")
    assert [r.round_number for r in history] == [0, 1, 2]


def test_num_rounds():
    assert make_stats().num_rounds == 3


def test_to_dict_roundtrip_with_telemetry_pointers(tmp_path):
    import json

    stats = make_stats()
    stats.messages_delivered = 30
    stats.bytes_delivered = 9000
    stats.retries = 2
    stats.duplicates_dropped = 1
    stats.telemetry = {"metrics": "/runs/x/metrics.json",
                       "trace": "/runs/x/trace.jsonl",
                       "profile": "/runs/x/profile.json"}
    path = stats.save_json(tmp_path / "stats.json")
    restored = RunStats.from_dict(json.loads(path.read_text()))
    assert restored.telemetry == stats.telemetry
    assert restored.duplicates_dropped == 1
    assert restored.messages_delivered == 30
    assert restored.global_metric_history("valid_acc") == [0.5, 0.8, 0.7]
    assert restored.rounds[0].client_records[0].client == "site-1"


def test_to_dict_omits_empty_telemetry():
    payload = make_stats().to_dict()
    assert "telemetry" not in payload
    assert payload["duplicates_dropped"] == 0
    assert RunStats.from_dict(payload).telemetry == {}
