"""Run statistics container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import ClientRoundRecord, RoundRecord, RunStats


def make_stats():
    stats = RunStats()
    for round_number, acc in enumerate([0.5, 0.8, 0.7]):
        record = RoundRecord(round_number=round_number,
                             global_metrics={"valid_acc": acc})
        for client in ("site-1", "site-2"):
            record.client_records.append(ClientRoundRecord(
                client=client, round_number=round_number, train_loss=1.0,
                valid_acc=acc, num_steps=10, seconds=2.0 + round_number))
        stats.add_round(record)
    return stats


def test_history():
    assert make_stats().global_metric_history("valid_acc") == [0.5, 0.8, 0.7]


def test_best_and_final():
    stats = make_stats()
    assert stats.best_global_metric("valid_acc") == 0.8
    assert stats.final_global_metric("valid_acc") == 0.7


def test_missing_metric_raises():
    with pytest.raises(KeyError):
        make_stats().best_global_metric("f1")
    with pytest.raises(KeyError):
        make_stats().final_global_metric("f1")


def test_mean_seconds_per_local_epoch():
    assert make_stats().mean_seconds_per_local_epoch() == pytest.approx(3.0)


def test_mean_seconds_empty():
    assert RunStats().mean_seconds_per_local_epoch() == 0.0


def test_client_history():
    history = make_stats().client_metric_history("site-1")
    assert [r.round_number for r in history] == [0, 1, 2]


def test_num_rounds():
    assert make_stats().num_rounds == 3
