"""Provisioning: project specs and startup kits."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.flare import (
    FLRole,
    ParticipantSpec,
    ProjectSpec,
    Provisioner,
    default_project,
    make_join_token,
)


class TestProjectSpec:
    def test_default_project_topology(self):
        project = default_project(n_clients=8)
        assert project.server.name == "server"
        assert len(project.clients) == 8
        assert project.clients[0].name == "site-1"

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            ProjectSpec("p", (ParticipantSpec("a", "o", FLRole.SERVER),
                              ParticipantSpec("a", "o", FLRole.CLIENT)))

    def test_exactly_one_server(self):
        with pytest.raises(ValueError, match="server"):
            ProjectSpec("p", (ParticipantSpec("c", "o", FLRole.CLIENT),))

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError, match="role"):
            ParticipantSpec("x", "o", "superuser")

    def test_bad_client_count(self):
        with pytest.raises(ValueError):
            default_project(n_clients=0)


class TestProvisioner:
    def test_kit_per_participant(self):
        project = default_project(n_clients=3)
        kits = Provisioner(project, seed=1, key_bits=512).provision()
        assert set(kits) == {p.name for p in project.participants}

    def test_certificates_chain_to_ca(self):
        project = default_project(n_clients=2)
        provisioner = Provisioner(project, seed=2, key_bits=512)
        kits = provisioner.provision()
        for kit in kits.values():
            assert provisioner.ca.verify_certificate(kit.certificate)
            assert kit.ca_public_key == provisioner.ca.public_key

    def test_keys_are_distinct(self):
        kits = Provisioner(default_project(n_clients=3), seed=3,
                           key_bits=512).provision()
        moduli = [kit.keypair.n for kit in kits.values()]
        assert len(set(moduli)) == len(moduli)

    def test_write_kits(self, tmp_path):
        provisioner = Provisioner(default_project(n_clients=2), seed=4, key_bits=512)
        kits = provisioner.provision()
        root = provisioner.write_kits(kits, tmp_path)
        info = json.loads((root / "site-1" / "startup" / "fed_info.json").read_text())
        assert info["participant"] == "site-1"
        assert info["role"] == "client"

    def test_kit_summary_fields(self):
        kits = Provisioner(default_project(n_clients=1), seed=5,
                           key_bits=512).provision()
        summary = kits["server"].summary()
        assert summary["role"] == "server" and summary["public_key_bits"] >= 511


class TestJoinToken:
    def test_uuid4_format(self):
        token = make_join_token(np.random.default_rng(0))
        parts = token.split("-")
        assert [len(p) for p in parts] == [8, 4, 4, 4, 12]
        assert parts[2][0] == "4"  # version nibble

    def test_deterministic_per_rng_state(self):
        a = make_join_token(np.random.default_rng(1))
        b = make_join_token(np.random.default_rng(1))
        assert a == b

    def test_successive_tokens_distinct(self):
        rng = np.random.default_rng(2)
        assert make_join_token(rng) != make_join_token(rng)
