"""Admin API."""

from __future__ import annotations

import pytest

from repro.flare import (
    FederatedClient,
    FLServer,
    InTimeAccumulateWeightedAggregator,
    MessageBus,
    Provisioner,
    ScatterAndGather,
    default_project,
)
from repro.flare.admin import AdminAPI

from .helpers import ToyLearner, toy_weights


@pytest.fixture()
def federation():
    project = default_project(n_clients=2, name="admin")
    kits = Provisioner(project, seed=0, key_bits=512).provision()
    bus = MessageBus()
    server = FLServer(kits["server"], bus, seed=0)
    clients = []
    for spec in project.clients:
        client = FederatedClient(kits[spec.name], ToyLearner(spec.name), bus)
        client.register(server)
        client.serve_in_thread()
        clients.append(client)
    yield server, clients
    server.stop_clients([c.name for c in clients])
    for client in clients:
        client.stop()


def make_controller(server, clients, rounds=3):
    return ScatterAndGather(
        server=server, client_names=[c.name for c in clients],
        initial_weights=toy_weights(),
        aggregator=InTimeAccumulateWeightedAggregator(), num_rounds=rounds)


class TestInventory:
    def test_list_clients(self, federation):
        server, clients = federation
        admin = AdminAPI(server)
        listing = admin.list_clients()
        assert [c.name for c in listing] == ["site-1", "site-2"]
        assert all(len(c.token) == 36 for c in listing)

    def test_check_client(self, federation):
        server, _ = federation
        admin = AdminAPI(server)
        info = admin.check_client("site-1")
        assert info.pending_messages == 0

    def test_check_unknown_client(self, federation):
        server, _ = federation
        with pytest.raises(KeyError):
            AdminAPI(server).check_client("site-99")


class TestJobControl:
    def test_status_progresses(self, federation):
        server, clients = federation
        controller = make_controller(server, clients)
        admin = AdminAPI(server, controller)
        before = admin.job_status()
        assert before.current_round == 0 and not before.finished
        controller.run()
        after = admin.job_status()
        assert after.finished and after.current_round == 3
        assert after.messages_delivered > 0

    def test_abort_stops_between_rounds(self, federation):
        server, clients = federation
        controller = make_controller(server, clients, rounds=5)
        admin = AdminAPI(server, controller)
        admin.abort_job()
        with pytest.raises(RuntimeError, match="aborted"):
            controller.run()
        assert admin.job_status().aborted

    def test_status_without_controller(self, federation):
        server, _ = federation
        with pytest.raises(RuntimeError, match="controller"):
            AdminAPI(server).job_status()
