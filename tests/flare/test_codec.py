"""Zero-copy tensor codec: round-trips, accounting, and corruption fuzzing.

The raw codec is the federation's wire format; the legacy npz codec stays as
its correctness oracle.  Both must (a) round-trip every supported payload
bit-exactly and (b) answer corrupted or truncated bytes with a clear
``ValueError`` — never a cryptic struct/json/zlib/zip traceback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import codec
from repro.flare.codec import (
    ALIGNMENT,
    MAGIC,
    decode_tensors,
    decode_tensors_npz,
    encode_tensors,
    encode_tensors_npz,
    reset_wire_metrics,
    wire_totals,
)

SAMPLE = {
    "weight": np.arange(24, dtype=np.float32).reshape(2, 3, 4) / 7.0,
    "bias": np.array([-1.5, 0.0, 2.25], dtype=np.float64),
    "steps": np.array(123, dtype=np.int64),          # 0-d scalar
    "empty": np.zeros((0, 5), dtype=np.float32),     # empty tensor
    "mask": np.array([True, False, True]),
    "half": np.linspace(-2, 2, 17, dtype=np.float16),
}


@pytest.fixture(autouse=True)
def _fresh_wire_registry():
    old = reset_wire_metrics()
    yield
    codec.wire_metrics = old


# ---------------------------------------------------------------------------
# round-trips
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("deflate", [False, True], ids=["raw", "raw+deflate"])
def test_roundtrip_preserves_everything(deflate):
    blob = encode_tensors(SAMPLE, extra={"data_kind": "WEIGHTS", "round": 3},
                          deflate=deflate)
    arrays, extra = decode_tensors(blob)
    assert list(arrays) == list(SAMPLE)
    for key, original in SAMPLE.items():
        decoded = arrays[key]
        assert decoded.dtype == original.dtype, key
        assert decoded.shape == original.shape, key
        np.testing.assert_array_equal(decoded, original)
    assert extra == {"data_kind": "WEIGHTS", "round": 3}


def test_roundtrip_matches_npz_oracle():
    raw_arrays, _ = decode_tensors(encode_tensors(SAMPLE))
    npz_arrays = decode_tensors_npz(encode_tensors_npz(SAMPLE))
    assert set(raw_arrays) == set(npz_arrays)
    for key in raw_arrays:
        np.testing.assert_array_equal(raw_arrays[key], npz_arrays[key])
        assert raw_arrays[key].dtype == npz_arrays[key].dtype


def test_decoded_arrays_are_zero_copy_readonly_views():
    blob = encode_tensors({"w": SAMPLE["weight"]})
    arrays, _ = decode_tensors(blob)
    view = arrays["w"]
    assert not view.flags.writeable
    assert view.base is not None  # a view over the blob, not an owned copy
    with pytest.raises((ValueError, RuntimeError)):
        view[0, 0, 0] = 1.0


def test_copy_flag_yields_owned_writable_arrays():
    arrays, _ = decode_tensors(encode_tensors({"w": SAMPLE["weight"]}), copy=True)
    arrays["w"][0, 0, 0] = 42.0
    assert arrays["w"][0, 0, 0] == 42.0


def test_tensor_block_is_aligned():
    blob = encode_tensors(SAMPLE)
    (manifest_len,) = np.frombuffer(blob[4:8], dtype="<u4")
    head = 8 + int(manifest_len)
    block_start = head + (-head % ALIGNMENT)
    assert block_start % ALIGNMENT == 0
    assert blob[:4] == MAGIC


def test_big_endian_input_is_normalized():
    be = np.arange(6, dtype=">f8").reshape(2, 3)
    arrays, _ = decode_tensors(encode_tensors({"w": be}))
    assert arrays["w"].dtype == np.dtype("<f8")
    np.testing.assert_array_equal(arrays["w"], be.astype("<f8"))


def test_object_dtype_is_rejected():
    with pytest.raises(ValueError, match="unsupported tensor dtype"):
        encode_tensors({"bad": np.array([object()])})


def test_empty_mapping_roundtrips():
    arrays, extra = decode_tensors(encode_tensors({}, extra={"k": 1}))
    assert arrays == {}
    assert extra == {"k": 1}


def test_deflate_shrinks_compressible_payload():
    smooth = {"w": np.zeros((256, 256), dtype=np.float32) + 0.125}
    raw = encode_tensors(smooth)
    packed = encode_tensors(smooth, deflate=True)
    assert len(packed) < len(raw) / 4


# ---------------------------------------------------------------------------
# byte accounting
# ---------------------------------------------------------------------------
def test_wire_totals_track_raw_and_encoded_bytes():
    blob = encode_tensors(SAMPLE)
    decode_tensors(blob)
    totals = wire_totals()
    raw = sum(a.nbytes for a in SAMPLE.values())
    assert totals["transport.bytes_raw{codec=raw}"] == 2 * raw  # encode + decode
    assert totals["transport.bytes_encoded{codec=raw}"] == 2 * len(blob)


def test_npz_codec_accounts_under_its_own_tag():
    decode_tensors_npz(encode_tensors_npz({"w": SAMPLE["weight"]}))
    totals = wire_totals()
    assert totals["transport.bytes_raw{codec=npz}"] > 0
    assert "transport.bytes_raw{codec=raw}" not in totals


# ---------------------------------------------------------------------------
# corruption / truncation fuzzing (chaos tier)
# ---------------------------------------------------------------------------
@pytest.mark.chaos
@pytest.mark.parametrize("deflate", [False, True], ids=["raw", "raw+deflate"])
def test_truncated_raw_blob_always_raises_value_error(deflate):
    blob = encode_tensors(SAMPLE, deflate=deflate)
    rng = np.random.default_rng(7)
    cuts = {0, 1, 4, 7, 8, len(blob) - 1}
    cuts.update(int(c) for c in rng.integers(0, len(blob), size=40))
    for cut in sorted(cuts):
        with pytest.raises(ValueError):
            decode_tensors(blob[:cut])


@pytest.mark.chaos
def test_bitflipped_raw_header_raises_value_error():
    blob = encode_tensors(SAMPLE)
    (manifest_len,) = np.frombuffer(blob[4:8], dtype="<u4")
    header_end = 8 + int(manifest_len)
    rng = np.random.default_rng(11)
    for _ in range(60):
        position = int(rng.integers(0, header_end))
        flipped = bytearray(blob)
        flipped[position] ^= 1 << int(rng.integers(0, 8))
        try:
            arrays, extra = decode_tensors(bytes(flipped))
        except ValueError:
            continue  # the expected, clearly-typed failure
        # A flip inside the JSON manifest may still parse (e.g. a digit in
        # "round" changed); whatever decodes must still be structurally sane.
        for array in arrays.values():
            assert array.nbytes >= 0


@pytest.mark.chaos
def test_truncated_npz_blob_always_raises_value_error():
    blob = encode_tensors_npz(SAMPLE)
    rng = np.random.default_rng(13)
    cuts = {0, 1, 2, len(blob) // 2, len(blob) - 1}
    cuts.update(int(c) for c in rng.integers(0, len(blob), size=40))
    for cut in sorted(cuts):
        with pytest.raises(ValueError):
            decode_tensors_npz(blob[:cut])


@pytest.mark.chaos
def test_bitflipped_npz_blob_raises_value_error_or_decodes():
    blob = encode_tensors_npz(SAMPLE)
    rng = np.random.default_rng(17)
    for _ in range(60):
        position = int(rng.integers(0, len(blob)))
        flipped = bytearray(blob)
        flipped[position] ^= 1 << int(rng.integers(0, 8))
        try:
            decode_tensors_npz(bytes(flipped))
        except ValueError:
            pass  # never a raw zlib/zipfile/struct traceback


@pytest.mark.chaos
def test_manifest_lies_are_caught():
    import json
    import struct

    def rebuild(mutate):
        blob = encode_tensors(SAMPLE)
        (manifest_len,) = struct.unpack_from("<I", blob, 4)
        manifest = json.loads(blob[8:8 + manifest_len].decode())
        mutate(manifest)
        body = json.dumps(manifest).encode()
        head = MAGIC + struct.pack("<I", len(body)) + body
        pad = -len(head) % ALIGNMENT
        # keep the original tensor block
        old_head = 8 + manifest_len
        block = blob[old_head + (-old_head % ALIGNMENT):]
        return head + b"\x00" * pad + block

    def oversize(m):
        m["tensors"][0]["nbytes"] = 1 << 40
        m["tensors"][0]["shape"] = [1 << 38]

    def bad_dtype(m):
        m["tensors"][0]["dtype"] = "not-a-dtype"

    def shape_mismatch(m):
        m["tensors"][0]["shape"] = [99, 99]

    def negative_offset(m):
        m["tensors"][0]["offset"] = -8

    def drop_table(m):
        del m["tensors"]

    for mutate in (oversize, bad_dtype, shape_mismatch, negative_offset, drop_table):
        with pytest.raises(ValueError, match="corrupted tensor blob"):
            decode_tensors(rebuild(mutate))
