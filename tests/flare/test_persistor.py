"""Model persistor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flare import FLContext, ModelPersistor


def ctx(round_number=0):
    c = FLContext(identity="server")
    c.set_prop("current_round", round_number)
    return c


def weights(value):
    return {"w": np.full(3, float(value))}


def test_save_and_load_last(tmp_path):
    persistor = ModelPersistor(tmp_path)
    persistor.save(weights(1.0), ctx())
    np.testing.assert_allclose(persistor.load_last()["w"], 1.0)


def test_best_tracks_maximum_metric(tmp_path):
    persistor = ModelPersistor(tmp_path)
    persistor.save(weights(1.0), ctx(0), metric=0.5)
    persistor.save(weights(2.0), ctx(1), metric=0.9)
    persistor.save(weights(3.0), ctx(2), metric=0.7)
    np.testing.assert_allclose(persistor.load_best()["w"], 2.0)
    np.testing.assert_allclose(persistor.load_last()["w"], 3.0)
    assert persistor.best_metric == 0.9


def test_no_metric_does_not_update_best(tmp_path):
    persistor = ModelPersistor(tmp_path)
    persistor.save(weights(1.0), ctx(0), metric=0.6)
    persistor.save(weights(2.0), ctx(1))  # metric-less round
    np.testing.assert_allclose(persistor.load_best()["w"], 1.0)


def test_best_falls_back_to_last(tmp_path):
    persistor = ModelPersistor(tmp_path)
    persistor.save(weights(4.0), ctx())
    np.testing.assert_allclose(persistor.load_best()["w"], 4.0)


def test_load_before_save_raises(tmp_path):
    persistor = ModelPersistor(tmp_path)
    with pytest.raises(FileNotFoundError):
        persistor.load_last()
    with pytest.raises(FileNotFoundError):
        persistor.load_best()


def test_creates_run_dir(tmp_path):
    target = tmp_path / "deep" / "run"
    ModelPersistor(target)
    assert target.is_dir()
