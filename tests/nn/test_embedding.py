"""Embedding layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import check_gradients
from repro.nn import Embedding, PositionalEmbedding


@pytest.fixture()
def rng():
    return np.random.default_rng(2)


class TestEmbedding:
    def test_lookup_shape(self, rng):
        layer = Embedding(10, 4, rng=rng)
        assert layer(np.array([[1, 2], [3, 4]])).shape == (2, 2, 4)

    def test_padding_idx_zero_vector(self, rng):
        layer = Embedding(10, 4, padding_idx=0, rng=rng)
        np.testing.assert_allclose(layer.weight.data[0], 0.0)

    def test_same_id_same_vector(self, rng):
        layer = Embedding(10, 4, rng=rng)
        out = layer(np.array([3, 3])).data
        np.testing.assert_allclose(out[0], out[1])

    def test_gradient_accumulates_for_repeats(self, rng):
        layer = Embedding(5, 3, rng=rng)
        layer.weight.data = layer.weight.data.astype(np.float64)
        ids = np.array([1, 1, 2])
        check_gradients(lambda: (layer(ids) ** 2).sum(), [layer.weight])

    def test_out_of_range_rejected(self, rng):
        layer = Embedding(5, 3, rng=rng)
        with pytest.raises(IndexError):
            layer(np.array([5]))
        with pytest.raises(IndexError):
            layer(np.array([-1]))

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            Embedding(0, 4)


class TestPositionalEmbedding:
    def test_shape(self, rng):
        layer = PositionalEmbedding(16, 8, rng=rng)
        assert layer(10).shape == (10, 8)

    def test_prefix_consistency(self, rng):
        layer = PositionalEmbedding(16, 8, rng=rng)
        np.testing.assert_allclose(layer(4).data, layer(10).data[:4])

    def test_too_long_rejected(self, rng):
        layer = PositionalEmbedding(8, 4, rng=rng)
        with pytest.raises(ValueError, match="max_len"):
            layer(9)
