"""Output heads and pooling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Parameter, Tensor, check_gradients
from repro.nn import (
    ClassificationHead,
    MLMHead,
    cls_pool,
    last_valid_pool,
    masked_mean_pool,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(12)


class TestPooling:
    def test_cls_pool(self, rng):
        hidden = Tensor(rng.normal(size=(3, 5, 4)))
        np.testing.assert_allclose(cls_pool(hidden).data, hidden.data[:, 0, :])

    def test_masked_mean_pool(self, rng):
        hidden = Tensor(rng.normal(size=(2, 4, 3)))
        mask = np.array([[True, True, False, False], [True, True, True, True]])
        out = masked_mean_pool(hidden, mask).data
        np.testing.assert_allclose(out[0], hidden.data[0, :2].mean(axis=0), atol=1e-6)
        np.testing.assert_allclose(out[1], hidden.data[1].mean(axis=0), atol=1e-6)

    def test_masked_mean_pool_no_mask(self, rng):
        hidden = Tensor(rng.normal(size=(2, 4, 3)))
        np.testing.assert_allclose(masked_mean_pool(hidden, None).data,
                                   hidden.data.mean(axis=1), atol=1e-6)

    def test_masked_mean_pool_empty_row_safe(self, rng):
        hidden = Tensor(rng.normal(size=(1, 3, 2)))
        out = masked_mean_pool(hidden, np.zeros((1, 3), bool)).data
        assert np.isfinite(out).all()

    def test_last_valid_pool(self, rng):
        hidden = Tensor(rng.normal(size=(2, 5, 3)))
        mask = np.array([[True, True, True, False, False],
                         [True, True, True, True, True]])
        out = last_valid_pool(hidden, mask).data
        np.testing.assert_allclose(out[0], hidden.data[0, 2])
        np.testing.assert_allclose(out[1], hidden.data[1, 4])

    def test_last_valid_pool_no_mask_uses_last(self, rng):
        hidden = Tensor(rng.normal(size=(2, 4, 3)))
        np.testing.assert_allclose(last_valid_pool(hidden, None).data,
                                   hidden.data[:, -1])

    def test_pool_gradients(self, rng):
        hidden = Tensor(rng.normal(size=(2, 3, 2)), requires_grad=True)
        mask = np.array([[True, True, False], [True, True, True]])
        check_gradients(lambda: (masked_mean_pool(hidden, mask) ** 2).sum(), [hidden])
        check_gradients(lambda: (last_valid_pool(hidden, mask) ** 2).sum(), [hidden])


class TestClassificationHead:
    def test_shape(self, rng):
        head = ClassificationHead(6, 2, dropout=0.0, rng=rng)
        assert head(Tensor(rng.normal(size=(4, 6)))).shape == (4, 2)

    def test_gradients(self, rng):
        head = ClassificationHead(3, 2, dropout=0.0, rng=rng)
        for p in head.parameters():
            p.data = p.data.astype(np.float64)
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        check_gradients(lambda: (head(x) ** 2).sum(), [x] + head.parameters(),
                        atol=3e-4)


class TestMLMHead:
    def test_shape(self, rng):
        head = MLMHead(4, 11, rng=rng)
        assert head(Tensor(rng.normal(size=(2, 3, 4)))).shape == (2, 3, 11)

    def test_weight_tying_shares_parameter(self, rng):
        table = Parameter(rng.normal(size=(11, 4)).astype(np.float32))
        head = MLMHead(4, 11, tied_embedding=table, rng=rng)
        assert head.decoder_weight is table

    def test_tied_gradient_flows_to_embedding(self, rng):
        table = Parameter(rng.normal(size=(7, 3)))
        head = MLMHead(3, 7, tied_embedding=table, rng=rng)
        out = head(Tensor(rng.normal(size=(1, 2, 3))))
        out.sum().backward()
        assert table.grad is not None and not np.allclose(table.grad, 0.0)

    def test_tied_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="tied"):
            MLMHead(3, 7, tied_embedding=Parameter(np.zeros((7, 4))), rng=rng)

    def test_untied_creates_own_weight(self, rng):
        head = MLMHead(3, 7, rng=rng)
        assert head.decoder_weight.shape == (7, 3)
