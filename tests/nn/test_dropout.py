"""Dropout layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Dropout


def test_eval_mode_identity():
    layer = Dropout(0.5)
    layer.eval()
    x = Tensor(np.ones((5, 5)))
    assert layer(x) is x


def test_train_mode_zeroes_and_scales():
    layer = Dropout(0.5, rng=np.random.default_rng(0))
    out = layer(Tensor(np.ones((100, 100)))).data
    zero_fraction = (out == 0).mean()
    assert 0.45 < zero_fraction < 0.55
    surviving = out[out != 0]
    np.testing.assert_allclose(surviving, 2.0)  # inverted scaling


def test_p_zero_is_identity():
    layer = Dropout(0.0)
    x = Tensor(np.ones(4))
    assert layer(x) is x


def test_invalid_p():
    with pytest.raises(ValueError):
        Dropout(1.0)
    with pytest.raises(ValueError):
        Dropout(-0.1)


def test_gradient_masks_match_forward():
    layer = Dropout(0.5, rng=np.random.default_rng(1))
    x = Tensor(np.ones((10, 10)), requires_grad=True)
    out = layer(x)
    out.sum().backward()
    # gradient is zero exactly where the forward output was dropped
    np.testing.assert_array_equal(x.grad == 0, out.data == 0)
