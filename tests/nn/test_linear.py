"""Linear layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import Linear


def to_f64(module):
    """Upcast parameters for tight numerical gradient checks."""
    for param in module.parameters():
        param.data = param.data.astype(np.float64)
    return module


@pytest.fixture()
def rng():
    return np.random.default_rng(11)


def test_output_shape(rng):
    layer = Linear(4, 7, rng=rng)
    out = layer(Tensor(rng.normal(size=(3, 4))))
    assert out.shape == (3, 7)


def test_3d_input(rng):
    layer = Linear(4, 2, rng=rng)
    assert layer(Tensor(rng.normal(size=(2, 5, 4)))).shape == (2, 5, 2)


def test_no_bias(rng):
    layer = Linear(3, 3, bias=False, rng=rng)
    assert layer.bias is None
    assert len(layer.parameters()) == 1


def test_matches_manual_computation(rng):
    layer = Linear(3, 2, rng=rng)
    x = rng.normal(size=(4, 3))
    expected = x @ layer.weight.data.T + layer.bias.data
    np.testing.assert_allclose(layer(Tensor(x)).data, expected, rtol=1e-5)


def test_gradients(rng):
    layer = to_f64(Linear(3, 2, rng=rng))
    x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
    check_gradients(lambda: (layer(x) ** 2).sum(), [x, layer.weight, layer.bias])


def test_wrong_input_dim_rejected(rng):
    layer = Linear(3, 2, rng=rng)
    with pytest.raises(ValueError, match="last dim"):
        layer(Tensor(rng.normal(size=(4, 5))))


def test_bad_dims_rejected(rng):
    with pytest.raises(ValueError):
        Linear(0, 3)


def test_deterministic_init():
    a = Linear(4, 4, rng=np.random.default_rng(5))
    b = Linear(4, 4, rng=np.random.default_rng(5))
    np.testing.assert_array_equal(a.weight.data, b.weight.data)


def test_params_are_float32(rng):
    layer = Linear(4, 4, rng=rng)
    assert layer.weight.dtype == np.float32
    assert layer.bias.dtype == np.float32
