"""Multi-head self-attention."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import MultiHeadSelfAttention
from repro.nn.attention import default_head_dim


@pytest.fixture()
def rng():
    return np.random.default_rng(9)


def make(dim=8, heads=2, rng=None, **kw):
    layer = MultiHeadSelfAttention(dim, heads, dropout=0.0,
                                   rng=rng or np.random.default_rng(0), **kw)
    layer.eval()
    return layer


def test_output_shape(rng):
    layer = make()
    assert layer(Tensor(rng.normal(size=(3, 5, 8)))).shape == (3, 5, 8)


def test_indivisible_dim_supported(rng):
    """Table II's BERT: hidden 128 with 6 heads (not divisible)."""
    layer = make(dim=128, heads=6)
    assert layer.head_dim == default_head_dim(128, 6) == 22
    assert layer(Tensor(rng.normal(size=(2, 4, 128)))).shape == (2, 4, 128)


def test_explicit_head_dim(rng):
    layer = make(dim=8, heads=2, head_dim=16)
    assert layer.query.out_features == 32
    assert layer(Tensor(rng.normal(size=(1, 3, 8)))).shape == (1, 3, 8)


def test_padding_mask_blocks_information(rng):
    """Changing a masked position must not change unmasked outputs."""
    layer = make()
    x = rng.normal(size=(1, 5, 8))
    mask = np.array([[True, True, True, False, False]])
    base = layer(Tensor(x), attention_mask=mask).data.copy()
    x_perturbed = x.copy()
    x_perturbed[0, 4] += 10.0  # masked position
    perturbed = layer(Tensor(x_perturbed), attention_mask=mask).data
    np.testing.assert_allclose(base[0, :3], perturbed[0, :3], atol=1e-5)


def test_no_mask_attends_everywhere(rng):
    layer = make()
    x = rng.normal(size=(1, 4, 8))
    base = layer(Tensor(x)).data.copy()
    x2 = x.copy()
    x2[0, 3] += 5.0
    assert not np.allclose(base[0, 0], layer(Tensor(x2)).data[0, 0], atol=1e-4)


def test_gradients(rng):
    layer = make(dim=4, heads=2)
    for p in layer.parameters():
        p.data = p.data.astype(np.float64)
    x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
    mask = np.array([[True, True, False], [True, True, True]])
    check_gradients(lambda: (layer(x, attention_mask=mask) ** 2).sum(),
                    [x] + layer.parameters(), atol=3e-4)


def test_bad_mask_shape(rng):
    layer = make()
    with pytest.raises(ValueError, match="attention_mask"):
        layer(Tensor(rng.normal(size=(2, 5, 8))), attention_mask=np.ones((2, 4), bool))


def test_bad_heads():
    with pytest.raises(ValueError):
        MultiHeadSelfAttention(8, 0)


def test_permutation_equivariance_without_positions(rng):
    """Self-attention (no positional encoding) commutes with permutations."""
    layer = make()
    x = rng.normal(size=(1, 4, 8))
    perm = np.array([2, 0, 3, 1])
    out = layer(Tensor(x)).data
    out_perm = layer(Tensor(x[:, perm])).data
    np.testing.assert_allclose(out[:, perm], out_perm, atol=1e-5)
