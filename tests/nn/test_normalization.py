"""LayerNorm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import LayerNorm


@pytest.fixture()
def rng():
    return np.random.default_rng(4)


def test_output_normalised(rng):
    layer = LayerNorm(8)
    out = layer(Tensor(rng.normal(loc=5.0, scale=3.0, size=(4, 8)))).data
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-5)
    np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)


def test_affine_params_applied(rng):
    layer = LayerNorm(4)
    layer.weight.data[...] = 2.0
    layer.bias.data[...] = 1.0
    out = layer(Tensor(rng.normal(size=(3, 4)))).data
    np.testing.assert_allclose(out.mean(axis=-1), 1.0, atol=1e-5)


def test_3d_input(rng):
    layer = LayerNorm(6)
    out = layer(Tensor(rng.normal(size=(2, 3, 6)))).data
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-5)


def test_gradients(rng):
    layer = LayerNorm(5)
    for p in layer.parameters():
        p.data = p.data.astype(np.float64)
    x = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
    check_gradients(lambda: (layer(x) ** 2).sum(), [x, layer.weight, layer.bias])


def test_constant_row_is_stable():
    layer = LayerNorm(4)
    out = layer(Tensor(np.full((1, 4), 3.0))).data
    assert np.isfinite(out).all()


def test_wrong_dim_rejected(rng):
    with pytest.raises(ValueError, match="last dim"):
        LayerNorm(4)(Tensor(rng.normal(size=(2, 5))))


def test_bad_dim():
    with pytest.raises(ValueError):
        LayerNorm(0)
