"""Bidirectional LSTM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.models import LstmClassifier, LstmConfig
from repro.nn import LSTM


@pytest.fixture()
def rng():
    return np.random.default_rng(17)


def test_output_width_doubles(rng):
    lstm = LSTM(3, 4, num_layers=2, bidirectional=True, rng=rng)
    out, states = lstm(Tensor(rng.normal(size=(2, 5, 3)).astype(np.float32)))
    assert out.shape == (2, 5, 8)
    assert states[-1][0].shape == (2, 8)


def test_unidirectional_unchanged(rng):
    lstm = LSTM(3, 4, num_layers=1, bidirectional=False, rng=rng)
    out, _ = lstm(Tensor(rng.normal(size=(2, 5, 3)).astype(np.float32)))
    assert out.shape == (2, 5, 4)
    assert lstm.cells_reverse is None


def test_reverse_direction_sees_future(rng):
    """Changing the last timestep must affect the FIRST output position
    through the backward direction (impossible for a forward-only LSTM)."""
    lstm = LSTM(3, 4, num_layers=1, bidirectional=True, rng=rng)
    lstm.eval()
    x = rng.normal(size=(1, 5, 3)).astype(np.float32)
    base = lstm(Tensor(x))[0].data[0, 0].copy()
    x2 = x.copy()
    x2[0, 4] += 5.0
    changed = lstm(Tensor(x2))[0].data[0, 0]
    assert not np.allclose(base, changed, atol=1e-5)


def test_forward_half_is_causal(rng):
    """The forward half of the output must not depend on future steps."""
    lstm = LSTM(3, 4, num_layers=1, bidirectional=True, rng=rng)
    lstm.eval()
    x = rng.normal(size=(1, 5, 3)).astype(np.float32)
    base = lstm(Tensor(x))[0].data[0, 0, :4].copy()  # forward half at t=0
    x2 = x.copy()
    x2[0, 4] += 5.0
    changed = lstm(Tensor(x2))[0].data[0, 0, :4]
    np.testing.assert_allclose(base, changed, atol=1e-6)


def test_gradients(rng):
    lstm = LSTM(2, 2, num_layers=1, bidirectional=True, rng=rng)
    for p in lstm.parameters():
        p.data = p.data.astype(np.float64)
    x = Tensor(rng.normal(size=(1, 3, 2)), requires_grad=True)
    check_gradients(lambda: (lstm(x)[0] ** 2).sum(), [x] + lstm.parameters(),
                    atol=5e-4)


def test_classifier_integration(rng):
    config = LstmConfig(vocab_size=30, hidden_dim=6, num_layers=1,
                        bidirectional=True, dropout=0.0)
    model = LstmClassifier(config, rng=rng)
    ids = rng.integers(1, 30, size=(3, 7))
    assert model(ids).shape == (3, 2)


def test_bidirectional_param_count(rng):
    uni = LSTM(3, 4, num_layers=1, bidirectional=False, rng=rng)
    bi = LSTM(3, 4, num_layers=1, bidirectional=True, rng=rng)
    assert bi.num_parameters() == 2 * uni.num_parameters()
