"""Transformer encoder stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import TransformerEncoder, TransformerEncoderLayer


@pytest.fixture()
def rng():
    return np.random.default_rng(6)


def make_layer(dim=6, heads=2):
    layer = TransformerEncoderLayer(dim, heads, dropout=0.0,
                                    rng=np.random.default_rng(0))
    layer.eval()
    return layer


def test_layer_shape(rng):
    layer = make_layer()
    assert layer(Tensor(rng.normal(size=(2, 5, 6)))).shape == (2, 5, 6)


def test_default_ffn_dim_is_4x():
    layer = make_layer(dim=6)
    assert layer.ffn_in.out_features == 24


def test_custom_ffn_dim():
    layer = TransformerEncoderLayer(6, 2, ffn_dim=10, rng=np.random.default_rng(0))
    assert layer.ffn_in.out_features == 10


def test_stack_depth():
    encoder = TransformerEncoder(3, 6, 2, dropout=0.0, rng=np.random.default_rng(0))
    assert len(encoder.layers) == 3


def test_stack_forward(rng):
    encoder = TransformerEncoder(2, 6, 2, dropout=0.0, rng=np.random.default_rng(0))
    encoder.eval()
    out = encoder(Tensor(rng.normal(size=(2, 4, 6))))
    assert out.shape == (2, 4, 6)
    assert np.isfinite(out.data).all()


def test_mask_propagates_through_stack(rng):
    encoder = TransformerEncoder(2, 6, 2, dropout=0.0, rng=np.random.default_rng(0))
    encoder.eval()
    x = rng.normal(size=(1, 4, 6))
    mask = np.array([[True, True, False, False]])
    base = encoder(Tensor(x), attention_mask=mask).data.copy()
    x2 = x.copy()
    x2[0, 3] += 8.0
    out = encoder(Tensor(x2), attention_mask=mask).data
    np.testing.assert_allclose(base[0, :2], out[0, :2], atol=1e-4)


def test_layer_gradients(rng):
    layer = make_layer(dim=4, heads=2)
    for p in layer.parameters():
        p.data = p.data.astype(np.float64)
    x = Tensor(rng.normal(size=(1, 3, 4)), requires_grad=True)
    check_gradients(lambda: (layer(x) ** 2).sum(), [x] + layer.parameters(),
                    atol=5e-4, rtol=5e-3)


def test_zero_layers_rejected():
    with pytest.raises(ValueError):
        TransformerEncoder(0, 6, 2)


def test_deterministic_construction(rng):
    a = TransformerEncoder(2, 6, 2, rng=np.random.default_rng(3))
    b = TransformerEncoder(2, 6, 2, rng=np.random.default_rng(3))
    for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
        assert na == nb
        np.testing.assert_array_equal(pa.data, pb.data)
