"""Sequential container."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn import Linear, Sequential


def test_applies_in_order():
    rng = np.random.default_rng(0)
    seq = Sequential(Linear(4, 3, rng=rng), Linear(3, 2, rng=rng))
    out = seq(Tensor(rng.normal(size=(5, 4))))
    assert out.shape == (5, 2)


def test_len_and_getitem():
    rng = np.random.default_rng(0)
    first = Linear(4, 4, rng=rng)
    seq = Sequential(first, Linear(4, 4, rng=rng))
    assert len(seq) == 2
    assert seq[0] is first


def test_parameters_collected():
    rng = np.random.default_rng(0)
    seq = Sequential(Linear(4, 4, rng=rng), Linear(4, 4, rng=rng))
    assert len(seq.parameters()) == 4


def test_matches_manual_composition():
    rng = np.random.default_rng(0)
    a, b = Linear(4, 3, rng=rng), Linear(3, 2, rng=rng)
    seq = Sequential(a, b)
    x = Tensor(rng.normal(size=(2, 4)))
    np.testing.assert_allclose(seq(x).data, b(a(x)).data)
