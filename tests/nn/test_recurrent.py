"""LSTM cell and stacked LSTM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import LSTM, LSTMCell


@pytest.fixture()
def rng():
    return np.random.default_rng(8)


class TestCell:
    def test_step_shapes(self, rng):
        cell = LSTMCell(4, 6, rng=rng)
        h, c = cell.initial_state(3)
        h2, c2 = cell(Tensor(rng.normal(size=(3, 4))), (h, c))
        assert h2.shape == (3, 6) and c2.shape == (3, 6)

    def test_forget_bias_initialised_to_one(self, rng):
        cell = LSTMCell(4, 6, rng=rng)
        np.testing.assert_allclose(cell.bias.data[6:12], 1.0)
        np.testing.assert_allclose(cell.bias.data[:6], 0.0)

    def test_state_bounded(self, rng):
        cell = LSTMCell(3, 5, rng=rng)
        h, c = cell.initial_state(2)
        for _ in range(20):
            h, c = cell(Tensor(rng.normal(scale=5.0, size=(2, 3))), (h, c))
        assert np.all(np.abs(h.data) <= 1.0)  # h = o * tanh(c)

    def test_gradients(self, rng):
        cell = LSTMCell(3, 2, rng=rng)
        for p in cell.parameters():
            p.data = p.data.astype(np.float64)
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)

        def fn():
            h, c = cell.initial_state(2)
            h1, c1 = cell(x, (h, c))
            h2, _ = cell(x, (h1, c1))
            return (h2 * h2).sum()

        check_gradients(fn, [x] + cell.parameters(), atol=3e-4)

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            LSTMCell(0, 3)


class TestStack:
    def test_output_shapes(self, rng):
        lstm = LSTM(4, 6, num_layers=2, rng=rng)
        out, states = lstm(Tensor(rng.normal(size=(3, 5, 4))))
        assert out.shape == (3, 5, 6)
        assert len(states) == 2
        assert states[0][0].shape == (3, 6)

    def test_final_state_matches_last_output(self, rng):
        lstm = LSTM(3, 4, num_layers=1, rng=rng)
        out, states = lstm(Tensor(rng.normal(size=(2, 6, 3))))
        np.testing.assert_allclose(states[0][0].data, out.data[:, -1], atol=1e-6)

    def test_mask_freezes_state_on_padding(self, rng):
        """Padded steps must not change the carried state."""
        lstm = LSTM(3, 4, num_layers=2, rng=rng)
        x = rng.normal(size=(1, 6, 3)).astype(np.float32)
        mask = np.array([[True, True, True, False, False, False]])
        _, states_masked = lstm(Tensor(x), mask=mask)
        _, states_short = lstm(Tensor(x[:, :3]), mask=None)
        np.testing.assert_allclose(states_masked[-1][0].data,
                                   states_short[-1][0].data, atol=1e-5)

    def test_padding_values_irrelevant_under_mask(self, rng):
        lstm = LSTM(3, 4, rng=rng)
        x = rng.normal(size=(1, 4, 3)).astype(np.float32)
        mask = np.array([[True, True, False, False]])
        _, s1 = lstm(Tensor(x), mask=mask)
        x2 = x.copy()
        x2[0, 2:] = 99.0
        _, s2 = lstm(Tensor(x2), mask=mask)
        np.testing.assert_allclose(s1[0][0].data, s2[0][0].data, atol=1e-5)

    def test_gradients_through_time(self, rng):
        lstm = LSTM(2, 3, num_layers=2, rng=rng)
        for p in lstm.parameters():
            p.data = p.data.astype(np.float64)
        x = Tensor(rng.normal(size=(2, 3, 2)), requires_grad=True)

        def fn():
            out, _ = lstm(x)
            return (out * out).sum()

        check_gradients(fn, [x] + lstm.parameters(), atol=5e-4, rtol=5e-3)

    def test_bad_mask_shape(self, rng):
        lstm = LSTM(3, 4, rng=rng)
        with pytest.raises(ValueError, match="mask"):
            lstm(Tensor(rng.normal(size=(2, 4, 3))), mask=np.ones((2, 5), bool))

    def test_zero_layers_rejected(self):
        with pytest.raises(ValueError):
            LSTM(3, 4, num_layers=0)
