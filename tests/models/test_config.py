"""Model configs and Table II presets."""

from __future__ import annotations

import pytest

from repro.models import BertConfig, LstmConfig, PRESETS, get_preset


class TestTable2Presets:
    """The presets must transcribe Table II exactly."""

    def test_bert(self):
        config = get_preset("bert", vocab_size=100)
        assert isinstance(config, BertConfig)
        assert (config.hidden_dim, config.num_heads, config.num_layers) == (128, 6, 12)

    def test_bert_mini(self):
        config = get_preset("bert-mini", vocab_size=100)
        assert (config.hidden_dim, config.num_heads, config.num_layers) == (50, 2, 6)

    def test_lstm(self):
        config = get_preset("lstm", vocab_size=100)
        assert isinstance(config, LstmConfig)
        assert (config.hidden_dim, config.num_layers) == (128, 3)

    def test_tiny_variants_exist(self):
        assert "bert-tiny" in PRESETS and "lstm-tiny" in PRESETS

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_preset("gpt-5", vocab_size=10)

    def test_overrides(self):
        config = get_preset("bert", vocab_size=100, num_layers=2, max_seq_len=16)
        assert config.num_layers == 2 and config.max_seq_len == 16
        assert config.hidden_dim == 128  # untouched


class TestValidation:
    def test_bad_vocab(self):
        with pytest.raises(ValueError):
            BertConfig(vocab_size=0)
        with pytest.raises(ValueError):
            LstmConfig(vocab_size=-1)

    def test_bad_layers(self):
        with pytest.raises(ValueError):
            BertConfig(vocab_size=10, num_layers=0)
        with pytest.raises(ValueError):
            LstmConfig(vocab_size=10, num_layers=0)

    def test_to_dict(self):
        d = get_preset("lstm", vocab_size=30).to_dict()
        assert d["vocab_size"] == 30 and d["name"] == "lstm"

    def test_frozen(self):
        config = get_preset("bert", vocab_size=10)
        with pytest.raises(Exception):
            config.hidden_dim = 1  # type: ignore[misc]
