"""Analytic parameter-count checks for the Table II models.

These pin down the architecture: if a layer silently gains or loses weights
the counts drift and these tests fail.
"""

from __future__ import annotations

from repro.models import (
    BertConfig,
    BertForMaskedLM,
    BertForSequenceClassification,
    LstmClassifier,
    LstmConfig,
)

import numpy as np


def bert_encoder_params(vocab, dim, heads, layers, max_len, head_dim, ffn=None):
    ffn = ffn or 4 * dim
    inner = heads * head_dim
    embeddings = vocab * dim + max_len * dim + 2 * dim  # tok + pos + LN
    attention = 3 * (dim * inner + inner) + inner * dim + dim  # qkv + out
    layer = attention + 2 * dim  # attn LN
    layer += dim * ffn + ffn + ffn * dim + dim  # ffn in/out
    layer += 2 * dim  # ffn LN
    return embeddings + layers * layer


def test_bert_encoder_count_matches_analytic():
    config = BertConfig(vocab_size=100, hidden_dim=128, num_heads=6,
                        num_layers=12, max_seq_len=64)
    model = BertForSequenceClassification(config, rng=np.random.default_rng(0))
    encoder = sum(p.size for name, p in model.named_parameters()
                  if name.startswith("bert."))
    expected = bert_encoder_params(100, 128, 6, 12, 64, head_dim=22)
    assert encoder == expected


def test_classification_head_count():
    config = BertConfig(vocab_size=50, hidden_dim=16, num_heads=2,
                        num_layers=1, max_seq_len=8)
    model = BertForSequenceClassification(config, rng=np.random.default_rng(0))
    head = sum(p.size for name, p in model.named_parameters()
               if name.startswith("head."))
    # dense(16x16+16) + classifier(2x16+2)
    assert head == 16 * 16 + 16 + 2 * 16 + 2


def test_mlm_head_count_with_tying():
    config = BertConfig(vocab_size=50, hidden_dim=16, num_heads=2,
                        num_layers=1, max_seq_len=8)
    model = BertForMaskedLM(config, rng=np.random.default_rng(0))
    # tied decoder weight must not add to the unique parameter count
    unique = model.num_parameters()
    named_total = sum(p.size for _, p in model.named_parameters())
    assert named_total - unique == 50 * 16  # the shared embedding counted twice


def test_lstm_count_matches_analytic():
    config = LstmConfig(vocab_size=100, hidden_dim=128, num_layers=3)
    model = LstmClassifier(config, rng=np.random.default_rng(0))
    embed = 100 * 128
    cell0 = 4 * 128 * (128 + 128) + 4 * 128
    cell_rest = 2 * (4 * 128 * (128 + 128) + 4 * 128)
    head = 2 * 128 + 2
    assert model.num_parameters() == embed + cell0 + cell_rest + head
