"""BERT model family: shapes, tying, transfer, learnability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Adam, functional as F
from repro.models import (
    BertConfig,
    BertForMaskedLM,
    BertForSequenceClassification,
    BertModel,
)


def tiny_config(vocab=30, **kw):
    defaults = dict(hidden_dim=16, num_heads=2, num_layers=2, max_seq_len=12,
                    dropout=0.0)
    defaults.update(kw)
    return BertConfig(vocab_size=vocab, **defaults)


@pytest.fixture()
def rng():
    return np.random.default_rng(21)


class TestEncoder:
    def test_hidden_shape(self, rng):
        model = BertModel(tiny_config(), rng=rng)
        ids = rng.integers(1, 30, size=(3, 8))
        assert model(ids).shape == (3, 8, 16)

    def test_mask_respected(self, rng):
        model = BertModel(tiny_config(), rng=rng)
        model.eval()
        ids = rng.integers(1, 30, size=(1, 6))
        mask = np.array([[True] * 4 + [False] * 2])
        base = model(ids, attention_mask=mask).data.copy()
        ids2 = ids.copy()
        ids2[0, 5] = 3  # change a padded token
        out = model(ids2, attention_mask=mask).data
        np.testing.assert_allclose(base[0, :4], out[0, :4], atol=1e-5)

    def test_positions_matter(self, rng):
        model = BertModel(tiny_config(), rng=rng)
        model.eval()
        ids = rng.integers(1, 30, size=(1, 6))
        swapped = ids[:, ::-1].copy()
        assert not np.allclose(model(ids).data[0, 0], model(swapped).data[0, 0],
                               atol=1e-4)


class TestClassifier:
    def test_logit_shape(self, rng):
        model = BertForSequenceClassification(tiny_config(), rng=rng)
        ids = rng.integers(1, 30, size=(4, 8))
        assert model(ids).shape == (4, 2)

    def test_overfits_tiny_batch(self, rng):
        """The full pipeline can drive training loss toward zero."""
        model = BertForSequenceClassification(tiny_config(), rng=rng)
        ids = rng.integers(1, 30, size=(8, 8))
        labels = np.array([0, 1] * 4)
        opt = Adam(model.parameters(), lr=5e-3)
        first = None
        for _ in range(60):
            loss = F.cross_entropy(model(ids), labels)
            if first is None:
                first = float(loss.data)
            model.zero_grad()
            loss.backward()
            opt.step()
        assert float(loss.data) < 0.25 * first

    def test_load_encoder_weights(self, rng):
        pretrained = BertForMaskedLM(tiny_config(), rng=np.random.default_rng(1))
        classifier = BertForSequenceClassification(tiny_config(),
                                                   rng=np.random.default_rng(2))
        loaded = classifier.load_encoder_weights(pretrained.encoder_state_dict())
        assert loaded > 0
        np.testing.assert_allclose(
            classifier.bert.token_embedding.weight.data,
            pretrained.bert.token_embedding.weight.data)

    def test_transfer_keeps_head_fresh(self, rng):
        pretrained = BertForMaskedLM(tiny_config(), rng=np.random.default_rng(1))
        classifier = BertForSequenceClassification(tiny_config(),
                                                   rng=np.random.default_rng(2))
        head_before = classifier.head.classifier.weight.data.copy()
        classifier.load_encoder_weights(pretrained.encoder_state_dict())
        np.testing.assert_array_equal(classifier.head.classifier.weight.data,
                                      head_before)


class TestMaskedLM:
    def test_logit_shape(self, rng):
        model = BertForMaskedLM(tiny_config(), rng=rng)
        ids = rng.integers(1, 30, size=(2, 8))
        assert model(ids).shape == (2, 8, 30)

    def test_decoder_tied_to_embedding(self, rng):
        model = BertForMaskedLM(tiny_config(), rng=rng)
        assert model.mlm_head.decoder_weight is model.bert.token_embedding.weight

    def test_tied_parameter_counted_once(self, rng):
        model = BertForMaskedLM(tiny_config(), rng=rng)
        ids = [id(p) for p in model.parameters()]
        assert len(ids) == len(set(ids))

    def test_encoder_state_dict_only_encoder(self, rng):
        model = BertForMaskedLM(tiny_config(), rng=rng)
        keys = model.encoder_state_dict().keys()
        assert keys and all(key.startswith("bert.") for key in keys)

    def test_mlm_learns_to_unmask(self, rng):
        """Loss on a fixed masked batch falls with training."""
        model = BertForMaskedLM(tiny_config(), rng=rng)
        ids = rng.integers(5, 30, size=(8, 8))
        corrupted = ids.copy()
        corrupted[:, 3] = 3  # [MASK]
        targets = np.full_like(ids, -100)
        targets[:, 3] = ids[:, 3]
        opt = Adam(model.parameters(), lr=5e-3)
        losses = []
        for _ in range(40):
            logits = model(corrupted)
            loss = F.cross_entropy(logits.reshape(-1, 30), targets.reshape(-1),
                                   ignore_index=-100)
            losses.append(float(loss.data))
            model.zero_grad()
            loss.backward()
            opt.step()
        assert losses[-1] < 0.5 * losses[0]
