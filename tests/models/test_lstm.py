"""LSTM classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Adam, functional as F
from repro.models import LstmClassifier, LstmConfig


def tiny_config(**kw):
    defaults = dict(vocab_size=30, hidden_dim=12, num_layers=2, dropout=0.0)
    defaults.update(kw)
    return LstmConfig(**defaults)


@pytest.fixture()
def rng():
    return np.random.default_rng(33)


def test_logit_shape(rng):
    model = LstmClassifier(tiny_config(), rng=rng)
    ids = rng.integers(1, 30, size=(4, 7))
    assert model(ids).shape == (4, 2)


def test_padding_invariance(rng):
    """Extra padded positions must not change the prediction."""
    model = LstmClassifier(tiny_config(), rng=rng)
    model.eval()
    ids = rng.integers(1, 30, size=(1, 4))
    mask4 = np.ones((1, 4), dtype=bool)
    padded = np.concatenate([ids, np.zeros((1, 3), dtype=np.int64)], axis=1)
    mask7 = np.concatenate([mask4, np.zeros((1, 3), dtype=bool)], axis=1)
    np.testing.assert_allclose(model(ids, attention_mask=mask4).data,
                               model(padded, attention_mask=mask7).data, atol=1e-5)


def test_custom_embed_dim(rng):
    model = LstmClassifier(tiny_config(embed_dim=5), rng=rng)
    assert model.embedding.embedding_dim == 5
    assert model(rng.integers(1, 30, size=(2, 6))).shape == (2, 2)


def test_overfits_tiny_batch(rng):
    model = LstmClassifier(tiny_config(), rng=rng)
    ids = rng.integers(1, 30, size=(8, 6))
    labels = np.array([0, 1] * 4)
    opt = Adam(model.parameters(), lr=1e-2)
    first = None
    for _ in range(60):
        loss = F.cross_entropy(model(ids), labels)
        if first is None:
            first = float(loss.data)
        model.zero_grad()
        loss.backward()
        opt.step()
    assert float(loss.data) < 0.25 * first


def test_order_sensitivity(rng):
    """A recurrent model must distinguish token order."""
    model = LstmClassifier(tiny_config(), rng=rng)
    model.eval()
    ids = np.array([[5, 9, 13, 21]])
    reversed_ids = ids[:, ::-1].copy()
    assert not np.allclose(model(ids).data, model(reversed_ids).data, atol=1e-5)
