"""Model factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    BertForMaskedLM,
    BertForSequenceClassification,
    LstmClassifier,
    MODEL_NAMES,
    build_classifier,
    build_mlm_model,
)


def test_builds_each_family():
    assert isinstance(build_classifier("bert-tiny", vocab_size=20),
                      BertForSequenceClassification)
    assert isinstance(build_classifier("lstm-tiny", vocab_size=20), LstmClassifier)
    assert isinstance(build_mlm_model("bert-tiny", vocab_size=20), BertForMaskedLM)


def test_table2_parameter_counts_ordering():
    """BERT has far more parameters than BERT-mini; both Table II sizes build."""
    bert = build_classifier("bert", vocab_size=100)
    mini = build_classifier("bert-mini", vocab_size=100)
    assert bert.num_parameters() > 4 * mini.num_parameters()


def test_deterministic_by_seed():
    a = build_classifier("lstm-tiny", vocab_size=20, seed=9)
    b = build_classifier("lstm-tiny", vocab_size=20, seed=9)
    for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
        np.testing.assert_array_equal(pa.data, pb.data)


def test_different_seeds_differ():
    a = build_classifier("lstm-tiny", vocab_size=20, seed=1)
    b = build_classifier("lstm-tiny", vocab_size=20, seed=2)
    assert any(not np.allclose(pa.data, pb.data)
               for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()))


def test_mlm_rejects_lstm():
    with pytest.raises(ValueError, match="BERT"):
        build_mlm_model("lstm", vocab_size=20)


def test_model_names_cover_presets():
    for name in MODEL_NAMES:
        if name.startswith("bert"):
            assert build_classifier(name, vocab_size=16, num_layers=1) is not None
        else:
            assert build_classifier(name, vocab_size=16, num_layers=1) is not None


def test_overrides_forwarded():
    model = build_classifier("bert-tiny", vocab_size=20, max_seq_len=9)
    assert model.config.max_seq_len == 9
