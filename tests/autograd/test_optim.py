"""Optimisers: convergence on a quadratic, state dicts, edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import SGD, Adam, AdamW, Parameter, Tensor


def quadratic_param(start=5.0):
    return Parameter(np.array([start]))


def minimise(optimizer, param, steps=200):
    for _ in range(steps):
        param.grad = None
        loss = ((param - 2.0) * (param - 2.0)).sum()
        loss.backward()
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert abs(minimise(SGD([p], lr=0.1), p) - 2.0) < 1e-3

    def test_momentum_converges(self):
        p = quadratic_param()
        assert abs(minimise(SGD([p], lr=0.05, momentum=0.9), p) - 2.0) < 1e-2

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        for _ in range(10):
            p.grad = np.zeros(1)
            opt.step()
        assert abs(p.data[0]) < 1.0

    def test_skips_none_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_state_dict_roundtrip(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1, momentum=0.9)
        minimise(opt, p, steps=5)
        state = opt.state_dict()
        p2 = quadratic_param()
        opt2 = SGD([p2], lr=0.5, momentum=0.1)
        opt2.load_state_dict(state)
        assert opt2.lr == 0.1 and opt2.momentum == 0.9
        np.testing.assert_allclose(opt2._velocity[0], opt._velocity[0])


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert abs(minimise(Adam([p], lr=0.1), p) - 2.0) < 1e-2

    def test_first_step_magnitude_is_lr(self):
        """Bias correction makes the very first Adam step ≈ lr."""
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.5)
        p.grad = np.array([3.0])
        opt.step()
        assert np.isclose(p.data[0], 10.0 - 0.5, atol=1e-6)

    def test_paper_lr_trains(self):
        # Table I uses Adam @ 1e-2; sanity-check it still converges here
        p = quadratic_param()
        assert abs(minimise(Adam([p], lr=1e-2), p, steps=2000) - 2.0) < 0.05

    def test_state_dict_roundtrip_continues_identically(self):
        p1 = quadratic_param()
        opt1 = Adam([p1], lr=0.1)
        minimise(opt1, p1, steps=3)
        p2 = Parameter(p1.data.copy())
        opt2 = Adam([p2], lr=0.1)
        opt2.load_state_dict(opt1.state_dict())
        a = minimise(opt1, p1, steps=3)
        b = minimise(opt2, p2, steps=3)
        assert np.isclose(a, b)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], lr=0.0)


class TestAdamW:
    def test_decay_is_decoupled(self):
        """With zero gradient AdamW still shrinks weights; Adam does not."""
        p_adamw = Parameter(np.array([1.0]))
        p_adam = Parameter(np.array([1.0]))
        opt_w = AdamW([p_adamw], lr=0.1, weight_decay=0.5)
        opt_a = Adam([p_adam], lr=0.1, weight_decay=0.0)
        for _ in range(5):
            p_adamw.grad = np.zeros(1)
            p_adam.grad = np.zeros(1)
            opt_w.step()
            opt_a.step()
        assert p_adamw.data[0] < 1.0
        assert np.isclose(p_adam.data[0], 1.0)

    def test_converges(self):
        p = quadratic_param()
        assert abs(minimise(AdamW([p], lr=0.1, weight_decay=0.01), p) - 2.0) < 0.1
