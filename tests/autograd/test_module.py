"""Module system: registration, state dicts, modes, tied weights."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Module, ModuleList, Parameter, Tensor


class Affine(Module):
    def __init__(self, n=3):
        super().__init__()
        self.weight = Parameter(np.ones((n, n)))
        self.bias = Parameter(np.zeros(n))

    def forward(self, x):
        return x @ self.weight.transpose() + self.bias


class Stack(Module):
    def __init__(self):
        super().__init__()
        self.first = Affine()
        self.second = Affine()

    def forward(self, x):
        return self.second(self.first(x))


class TestRegistration:
    def test_named_parameters_nested(self):
        model = Stack()
        names = [name for name, _ in model.named_parameters()]
        assert names == ["first.weight", "first.bias", "second.weight", "second.bias"]

    def test_parameters_dedupes_tied_weights(self):
        model = Stack()
        model.second.weight = model.first.weight  # tie
        params = model.parameters()
        assert len(params) == 3  # 4 slots, one shared

    def test_num_parameters(self):
        assert Affine(3).num_parameters() == 12

    def test_reassignment_replaces(self):
        model = Affine()
        model.weight = Parameter(np.zeros((3, 3)))
        assert len(model.parameters()) == 2

    def test_assign_before_init_fails(self):
        class Broken(Module):
            def __init__(self):
                self.x = Parameter(np.ones(1))  # no super().__init__()

        with pytest.raises(AttributeError):
            Broken()

    def test_named_modules(self):
        model = Stack()
        names = [name for name, _ in model.named_modules()]
        assert "" in names and "first" in names and "second" in names


class TestModes:
    def test_train_eval_propagates(self):
        model = Stack()
        model.eval()
        assert not model.training and not model.first.training
        model.train()
        assert model.second.training

    def test_zero_grad(self):
        model = Affine()
        out = model(Tensor(np.ones((2, 3)))).sum()
        out.backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None


class TestStateDict:
    def test_roundtrip(self):
        src, dst = Affine(), Affine()
        src.weight.data[...] = 7.0
        dst.load_state_dict(src.state_dict())
        np.testing.assert_allclose(dst.weight.data, 7.0)

    def test_state_dict_is_a_copy(self):
        model = Affine()
        state = model.state_dict()
        state["weight"][...] = 99.0
        assert not np.allclose(model.weight.data, 99.0)

    def test_strict_missing_key_fails(self):
        model = Affine()
        state = model.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_strict_unexpected_key_fails(self):
        model = Affine()
        state = model.state_dict()
        state["extra"] = np.ones(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_non_strict_partial_load(self):
        model = Affine()
        model.load_state_dict({"weight": np.full((3, 3), 5.0)}, strict=False)
        np.testing.assert_allclose(model.weight.data, 5.0)

    def test_shape_mismatch_fails(self):
        model = Affine()
        state = model.state_dict()
        state["weight"] = np.ones((2, 2))
        with pytest.raises(ValueError, match="shape"):
            model.load_state_dict(state)

    def test_load_preserves_parameter_identity(self):
        model = Affine()
        param = model.weight
        model.load_state_dict(model.state_dict())
        assert model.weight is param  # in-place, optimiser bindings survive


class TestModuleList:
    def test_iteration_and_indexing(self):
        layers = ModuleList(Affine() for _ in range(3))
        assert len(layers) == 3
        assert layers[1] is list(layers)[1]

    def test_parameters_registered(self):
        layers = ModuleList([Affine(), Affine()])
        assert len(layers.parameters()) == 4

    def test_append(self):
        layers = ModuleList()
        layers.append(Affine())
        assert len(layers) == 1

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
