"""Graph mechanics: accumulation, reuse, no_grad, detach, error paths."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.autograd import Tensor, is_grad_enabled, no_grad, ones, tensor, zeros


class TestBackwardBasics:
    def test_grad_accumulates_over_reuse(self):
        a = Tensor([2.0], requires_grad=True)
        out = (a * a) + a  # d/da = 2a + 1 = 5
        out.sum().backward()
        assert np.isclose(a.grad[0], 5.0)

    def test_diamond_graph(self):
        a = Tensor([3.0], requires_grad=True)
        b = a * 2.0
        c = a * 4.0
        (b + c).sum().backward()
        assert np.isclose(a.grad[0], 6.0)

    def test_two_backwards_accumulate(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3.0).sum().backward()
        first = a.grad.copy()
        (a * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * first)

    def test_seed_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        out = a * 2.0
        out.backward(np.full((2, 2), 0.5))
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))

    def test_nonscalar_needs_seed(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError, match="non-scalar"):
            (a * 2.0).backward()

    def test_wrong_seed_shape_rejected(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError, match="shape"):
            (a * 2.0).backward(np.ones(4))

    def test_backward_without_grad_flag(self):
        a = Tensor(np.ones(3))
        with pytest.raises(RuntimeError, match="does not require grad"):
            a.sum().backward()

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_deep_chain_no_recursion_error(self):
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(3000):  # would blow the stack with recursive backprop
            x = x + 1.0
        x.sum().backward()
        assert np.isclose(a.grad[0], 1.0)


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_no_grad_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_after_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_no_grad_is_thread_local(self):
        """The FL simulator trains on threads while the server evaluates
        under no_grad(); modes must not leak across threads."""
        results: dict[str, bool] = {}
        barrier = threading.Barrier(2)

        def main_side():
            with no_grad():
                barrier.wait()   # other thread checks while we're inside
                barrier.wait()

        def other_side():
            barrier.wait()
            results["enabled_in_other_thread"] = is_grad_enabled()
            barrier.wait()

        t1 = threading.Thread(target=main_side)
        t2 = threading.Thread(target=other_side)
        t1.start(); t2.start(); t1.join(); t2.join()
        assert results["enabled_in_other_thread"]

    def test_detach(self):
        a = Tensor([1.0], requires_grad=True)
        b = a.detach()
        assert not b.requires_grad
        assert b.data is a.data  # shares storage


class TestConstructors:
    def test_tensor_helper(self):
        t = tensor([1, 2, 3], requires_grad=True)
        assert t.requires_grad and t.dtype.kind == "f"

    def test_zeros_ones(self):
        assert zeros(2, 3).shape == (2, 3)
        assert float(ones(2).sum().data) == 2.0

    def test_from_tensor_copies_reference(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        np.testing.assert_allclose(a.data, b.data)

    def test_int_input_promotes_to_float(self):
        t = Tensor(np.arange(4))
        assert t.dtype.kind == "f"

    def test_scalar_coercion_preserves_float32(self):
        a = Tensor(np.ones(3, dtype=np.float32))
        assert (a + 1e-5).dtype == np.float32
        assert (a * 0.5).dtype == np.float32
        assert (a / 2.0).dtype == np.float32

    def test_len_repr_item(self):
        a = Tensor([1.0, 2.0])
        assert len(a) == 2
        assert "Tensor" in repr(a)
        assert Tensor([3.5]).item() == 3.5

    def test_numpy_returns_backing_array(self):
        a = Tensor([1.0])
        assert a.numpy() is a.data
