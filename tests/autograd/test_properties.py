"""Property-based tests of autograd algebra (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor

finite = st.floats(-1e3, 1e3, allow_nan=False, width=64)
small_arrays = hnp.arrays(dtype=np.float64,
                          shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=4),
                          elements=finite)


@settings(max_examples=40, deadline=None)
@given(small_arrays)
def test_sum_gradient_is_ones(array):
    t = Tensor(array, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(array))


@settings(max_examples=40, deadline=None)
@given(small_arrays, finite)
def test_scalar_mul_gradient(array, scalar):
    t = Tensor(array, requires_grad=True)
    (t * scalar).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(array, scalar), rtol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_arrays)
def test_addition_commutes_in_value_and_grad(array):
    a = Tensor(array, requires_grad=True)
    b = Tensor(array * 0.5 + 1.0, requires_grad=True)
    (a + b).sum().backward()
    grad_ab = (a.grad.copy(), b.grad.copy())
    a.zero_grad(); b.zero_grad()
    (b + a).sum().backward()
    np.testing.assert_allclose(a.grad, grad_ab[0])
    np.testing.assert_allclose(b.grad, grad_ab[1])


@settings(max_examples=40, deadline=None)
@given(small_arrays)
def test_reshape_roundtrip_gradient_identity(array):
    t = Tensor(array, requires_grad=True)
    t.reshape(-1).reshape(*array.shape).sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(array))


@settings(max_examples=40, deadline=None)
@given(small_arrays)
def test_transpose_involution(array):
    t = Tensor(array, requires_grad=True)
    round_trip = t.transpose().transpose()
    np.testing.assert_allclose(round_trip.data, array)
    round_trip.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(array))


@settings(max_examples=40, deadline=None)
@given(hnp.arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
                  elements=finite))
def test_linearity_of_backward(array):
    """grad of (2x).sum() equals 2 * grad of x.sum()."""
    t1 = Tensor(array, requires_grad=True)
    (t1 * 2.0).sum().backward()
    t2 = Tensor(array, requires_grad=True)
    t2.sum().backward()
    np.testing.assert_allclose(t1.grad, 2.0 * t2.grad)


@settings(max_examples=40, deadline=None)
@given(small_arrays)
def test_masked_fill_keeps_unmasked_values(array):
    mask = array > np.median(array)
    t = Tensor(array)
    out = t.masked_fill(mask, 0.0)
    np.testing.assert_allclose(out.data[~mask], array[~mask])
    assert np.all(out.data[mask] == 0.0)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 5), st.integers(1, 5))
def test_tanh_bounded(rows, cols):
    rng = np.random.default_rng(rows * 10 + cols)
    t = Tensor(rng.normal(scale=10.0, size=(rows, cols)))
    out = t.tanh().data
    assert np.all(out <= 1.0) and np.all(out >= -1.0)
