"""Fused kernels vs the unfused reference compositions.

Every fused op in :mod:`repro.autograd.functional` is checked three ways:

1. **Numerical gradient check** against central finite differences
   (:func:`repro.autograd.check_gradients`).
2. **Parity with the reference composition** in
   :mod:`repro.autograd.reference`: identical outputs *and* identical
   gradients for every input, in float64, including masked/padded and
   dropout paths (the dropout masks are reproduced by sharing a seeded
   generator through the common ``_dropout_keep`` helper).
3. **End-to-end**: a fixed-seed training run with the fused stack matches
   one with the whole functional layer swapped onto the reference
   implementations, loss-for-loss.

The whole module is parametrized over every registered array backend
(``available_backends()``), so each fused op is validated against the same
unfused reference under ``numpy``, ``blas`` and ``fastmath`` dispatch.  The
parity tolerance widens to whatever the active backend declares in
``describe()`` — 0.0 (bit-identical) for numpy/blas, 1e-6 for fastmath's
tanh-based sigmoid.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import (
    SGD,
    Tensor,
    available_backends,
    check_gradients,
    functional as F,
    get_default_dtype,
    reference as R,
    set_default_dtype,
    use_backend,
)
from repro.autograd.backend import active_backend

ATOL = 1e-10


@pytest.fixture(params=available_backends(), autouse=True)
def backend(request):
    """Run every test in this module under each registered backend."""
    with use_backend(request.param):
        yield request.param


@pytest.fixture()
def rng():
    return np.random.default_rng(11)


def t(rng, *shape, scale=0.7):
    return Tensor(rng.normal(0.0, scale, shape), requires_grad=True)


def clones(params):
    return [Tensor(p.data.copy(), requires_grad=True) for p in params]


def assert_parity(rng, fused_out, ref_out, fused_params, ref_params, atol=None):
    """Same forward values and, after a shared upstream grad, same gradients.

    The tolerance floor is whatever the active backend declares: numpy and
    blas promise bit-identical kernels (so the tight default holds), while
    fastmath is bounded at 1e-6.
    """
    if atol is None:
        atol = ATOL
    atol = max(atol, float(active_backend().describe().get("tolerance", 0.0)))
    np.testing.assert_allclose(fused_out.data, ref_out.data, atol=atol)
    upstream = rng.normal(size=fused_out.shape)
    fused_out.backward(upstream.copy())
    ref_out.backward(upstream.copy())
    for i, (p, q) in enumerate(zip(fused_params, ref_params)):
        assert q.grad is not None, f"reference param {i} got no gradient"
        np.testing.assert_allclose(p.grad, q.grad, atol=atol,
                                   err_msg=f"grad mismatch on param {i}")


class TestSoftmaxFamily:
    def test_softmax_matches_reference(self, rng):
        x = t(rng, 5, 9)
        xr = clones([x])[0]
        assert_parity(rng, F.softmax(x), R.softmax(xr), [x], [xr])

    def test_log_softmax_matches_reference(self, rng):
        x = t(rng, 4, 6)
        xr = clones([x])[0]
        assert_parity(rng, F.log_softmax(x), R.log_softmax(xr), [x], [xr])

    def test_softmax_gradcheck(self, rng):
        x = t(rng, 3, 5)
        w = Tensor(rng.normal(size=(3, 5)))
        check_gradients(lambda: (F.softmax(x) * w).sum(), [x])

    def test_log_softmax_gradcheck(self, rng):
        x = t(rng, 3, 5)
        w = Tensor(rng.normal(size=(3, 5)))
        check_gradients(lambda: (F.log_softmax(x) * w).sum(), [x])


class TestLossParity:
    @pytest.mark.parametrize("reduction", ["mean", "sum", "none"])
    @pytest.mark.parametrize("use_ignore", [False, True])
    @pytest.mark.parametrize("use_weights", [False, True])
    def test_cross_entropy(self, rng, reduction, use_ignore, use_weights):
        logits = t(rng, 8, 5)
        lr = clones([logits])[0]
        targets = rng.integers(0, 5, size=8)
        if use_ignore:
            targets[[1, 4]] = -100
        weights = np.abs(rng.normal(1.0, 0.3, 5)) if use_weights else None
        fused = F.cross_entropy(logits, targets, ignore_index=-100 if use_ignore else None,
                                reduction=reduction, class_weights=weights)
        ref = R.cross_entropy(lr, targets, ignore_index=-100 if use_ignore else None,
                              reduction=reduction, class_weights=weights)
        assert_parity(rng, fused, ref, [logits], [lr])

    def test_cross_entropy_3d_gradcheck(self, rng):
        logits = t(rng, 2, 3, 4)
        targets = rng.integers(0, 4, size=(2, 3)).reshape(-1)
        check_gradients(lambda: F.cross_entropy(logits, targets), [logits])

    @pytest.mark.parametrize("reduction", ["mean", "sum", "none"])
    def test_bce_with_logits(self, rng, reduction):
        logits = t(rng, 7)
        lr = clones([logits])[0]
        targets = rng.integers(0, 2, size=7).astype(float)
        assert_parity(rng, F.binary_cross_entropy_with_logits(logits, targets, reduction=reduction),
                      R.binary_cross_entropy_with_logits(lr, targets, reduction=reduction),
                      [logits], [lr], atol=1e-9)

    def test_bce_gradcheck(self, rng):
        logits = t(rng, 6)
        targets = rng.integers(0, 2, size=6).astype(float)
        check_gradients(lambda: F.binary_cross_entropy_with_logits(logits, targets), [logits])


class TestGelu:
    def test_matches_reference(self, rng):
        x = t(rng, 4, 7, scale=2.0)
        xr = clones([x])[0]
        assert_parity(rng, F.gelu(x), R.gelu(xr), [x], [xr])

    def test_gradcheck(self, rng):
        x = t(rng, 3, 4)
        check_gradients(lambda: F.gelu(x).sum(), [x])


class TestNormFamily:
    def test_layer_norm_matches_reference(self, rng):
        params = [t(rng, 3, 5, 8), t(rng, 8, scale=0.2), t(rng, 8, scale=0.2)]
        refs = clones(params)
        assert_parity(rng, F.layer_norm(*params), R.layer_norm(*refs), params, refs)

    def test_layer_norm_gradcheck(self, rng):
        x, w, b = t(rng, 4, 6), t(rng, 6), t(rng, 6)
        check_gradients(lambda: F.layer_norm(x, w, b).sum(), [x, w, b])

    def test_add_layer_norm_matches_reference(self, rng):
        params = [t(rng, 2, 5, 8), t(rng, 2, 5, 8), t(rng, 8), t(rng, 8)]
        refs = clones(params)
        assert_parity(rng, F.add_layer_norm(*params), R.add_layer_norm(*refs), params, refs)

    def test_add_layer_norm_gradcheck(self, rng):
        x, s, w, b = t(rng, 3, 6), t(rng, 3, 6), t(rng, 6), t(rng, 6)
        check_gradients(lambda: F.add_layer_norm(x, s, w, b).sum(), [x, s, w, b])


class TestEmbedLayerNorm:
    def _params(self, rng):
        return [t(rng, 20, 8), t(rng, 10, 8), t(rng, 8), t(rng, 8)]

    @pytest.mark.parametrize("dropout_p", [0.0, 0.35])
    def test_matches_reference(self, rng, dropout_p):
        params = self._params(rng)
        refs = clones(params)
        ids = rng.integers(0, 20, size=(3, 6))
        fused = F.embed_layer_norm(params[0], params[1], ids, params[2], params[3],
                                   dropout_p=dropout_p, training=True,
                                   rng=np.random.default_rng(9))
        ref = R.embed_layer_norm(refs[0], refs[1], ids, refs[2], refs[3],
                                 dropout_p=dropout_p, training=True,
                                 rng=np.random.default_rng(9))
        assert_parity(rng, fused, ref, params, refs)

    def test_gradcheck(self, rng):
        tok, pos, w, b = self._params(rng)
        ids = rng.integers(0, 20, size=(2, 5))
        check_gradients(lambda: F.embed_layer_norm(tok, pos, ids, w, b).sum(),
                        [tok, pos, w, b])

    def test_rejects_bad_inputs(self, rng):
        tok, pos, w, b = self._params(rng)
        with pytest.raises(IndexError):
            F.embed_layer_norm(tok, pos, np.array([[99]]), w, b)
        with pytest.raises(ValueError):
            F.embed_layer_norm(tok, pos, np.zeros((1, 11), dtype=int), w, b)
        with pytest.raises(ValueError):
            F.embed_layer_norm(tok, pos, np.zeros((1, 2), dtype=int), w, b, dropout_p=1.0)


class TestTanhHead:
    @pytest.mark.parametrize("dropout_p", [0.0, 0.25])
    def test_matches_reference(self, rng, dropout_p):
        params = [t(rng, 6, 8), t(rng, 8, 8), t(rng, 8), t(rng, 3, 8), t(rng, 3)]
        refs = clones(params)
        fused = F.tanh_head(*params, dropout_p=dropout_p, training=True,
                            rng=np.random.default_rng(4))
        ref = R.tanh_head(*refs, dropout_p=dropout_p, training=True,
                          rng=np.random.default_rng(4))
        assert_parity(rng, fused, ref, params, refs)

    def test_gradcheck(self, rng):
        params = [t(rng, 4, 6), t(rng, 6, 6), t(rng, 6), t(rng, 2, 6), t(rng, 2)]
        check_gradients(lambda: F.tanh_head(*params).sum(), params)


def _padding_mask(rng, batch, seq):
    mask = rng.random((batch, seq)) > 0.3
    mask[:, 0] = True  # every sequence keeps at least one valid position
    return mask


class TestScaledDotProductAttention:
    @pytest.mark.parametrize("masked", [False, True])
    @pytest.mark.parametrize("dropout_p", [0.0, 0.3])
    def test_matches_reference(self, rng, masked, dropout_p):
        params = [t(rng, 2, 3, 5, 4), t(rng, 2, 3, 5, 4), t(rng, 2, 3, 5, 4)]
        refs = clones(params)
        mask = _padding_mask(rng, 2, 5)[:, None, None, :] if masked else None
        fused = F.scaled_dot_product_attention(
            *params, attention_mask=mask, dropout_p=dropout_p, training=True,
            rng=np.random.default_rng(2))
        ref = R.scaled_dot_product_attention(
            *refs, attention_mask=mask, dropout_p=dropout_p, training=True,
            rng=np.random.default_rng(2))
        assert_parity(rng, fused, ref, params, refs)

    def test_masked_gradcheck(self, rng):
        q, k, v = t(rng, 1, 2, 4, 3), t(rng, 1, 2, 4, 3), t(rng, 1, 2, 4, 3)
        mask = _padding_mask(rng, 1, 4)[:, None, None, :]
        check_gradients(
            lambda: F.scaled_dot_product_attention(q, k, v, attention_mask=mask).sum(),
            [q, k, v])


class TestAttentionBlocks:
    def _params(self, rng, dim=8, inner=6):
        return [t(rng, 2, 5, dim),                      # x
                t(rng, inner, dim), t(rng, inner),      # q
                t(rng, inner, dim), t(rng, inner),      # k
                t(rng, inner, dim), t(rng, inner),      # v
                t(rng, dim, inner), t(rng, dim)]        # out

    @pytest.mark.parametrize("masked", [False, True])
    @pytest.mark.parametrize("dropout_p", [0.0, 0.3])
    def test_multi_head_attention_matches_reference(self, rng, masked, dropout_p):
        params = self._params(rng)
        refs = clones(params)
        mask = _padding_mask(rng, 2, 5)[:, None, None, :] if masked else None
        fused = F.multi_head_attention(
            *params, 2, attention_mask=mask, dropout_p=dropout_p, training=True,
            rng=np.random.default_rng(3), out_dropout_p=dropout_p,
            out_rng=np.random.default_rng(8))
        ref = R.multi_head_attention(
            *refs, 2, attention_mask=mask, dropout_p=dropout_p, training=True,
            rng=np.random.default_rng(3), out_dropout_p=dropout_p,
            out_rng=np.random.default_rng(8))
        assert_parity(rng, fused, ref, params, refs)

    def test_multi_head_attention_gradcheck(self, rng):
        params = self._params(rng, dim=6, inner=4)
        check_gradients(lambda: F.multi_head_attention(*params, 2).sum(), params)

    @pytest.mark.parametrize("masked", [False, True])
    @pytest.mark.parametrize("dropout_p", [0.0, 0.3])
    def test_attention_layer_matches_reference(self, rng, masked, dropout_p):
        params = self._params(rng, dim=8, inner=8) + [t(rng, 8), t(rng, 8)]
        refs = clones(params)
        mask = _padding_mask(rng, 2, 5)[:, None, None, :] if masked else None
        fused = F.attention_layer(
            *params[:9], 2, params[9], params[10], attention_mask=mask,
            dropout_p=dropout_p, training=True, rng=np.random.default_rng(3),
            out_dropout_p=dropout_p, out_rng=np.random.default_rng(8))
        ref = R.attention_layer(
            *refs[:9], 2, refs[9], refs[10], attention_mask=mask,
            dropout_p=dropout_p, training=True, rng=np.random.default_rng(3),
            out_dropout_p=dropout_p, out_rng=np.random.default_rng(8))
        assert_parity(rng, fused, ref, params, refs)

    def test_attention_layer_gradcheck(self, rng):
        params = self._params(rng, dim=6, inner=6) + [t(rng, 6), t(rng, 6)]
        check_gradients(
            lambda: F.attention_layer(*params[:9], 2, params[9], params[10]).sum(),
            params)


class TestFeedForwardBlocks:
    def _params(self, rng):
        return [t(rng, 2, 4, 6), t(rng, 10, 6), t(rng, 10), t(rng, 6, 10), t(rng, 6)]

    @pytest.mark.parametrize("dropout_p", [0.0, 0.25])
    def test_ffn_matches_reference(self, rng, dropout_p):
        params = self._params(rng)
        refs = clones(params)
        fused = F.ffn(*params, dropout_p=dropout_p, training=True,
                      rng=np.random.default_rng(6))
        ref = R.ffn(*refs, dropout_p=dropout_p, training=True,
                    rng=np.random.default_rng(6))
        assert_parity(rng, fused, ref, params, refs)

    def test_ffn_gradcheck(self, rng):
        params = self._params(rng)
        check_gradients(lambda: F.ffn(*params).sum(), params)

    @pytest.mark.parametrize("dropout_p", [0.0, 0.25])
    def test_ffn_layer_matches_reference(self, rng, dropout_p):
        params = self._params(rng) + [t(rng, 6), t(rng, 6)]
        refs = clones(params)
        fused = F.ffn_layer(*params, dropout_p=dropout_p, training=True,
                            rng=np.random.default_rng(6))
        ref = R.ffn_layer(*refs, dropout_p=dropout_p, training=True,
                          rng=np.random.default_rng(6))
        assert_parity(rng, fused, ref, params, refs)

    def test_ffn_layer_gradcheck(self, rng):
        params = self._params(rng) + [t(rng, 6), t(rng, 6)]
        check_gradients(lambda: F.ffn_layer(*params).sum(), params)


class TestLstmStep:
    @pytest.mark.parametrize("masked", [False, True])
    def test_matches_reference(self, rng, masked):
        hd = 5
        params = [t(rng, 3, 4 * hd), t(rng, 3, hd), t(rng, 3, hd), t(rng, 4 * hd, hd)]
        refs = clones(params)
        mask = np.array([True, False, True]) if masked else None
        hf, cf = F.lstm_step(*params, step_mask=mask)
        hr, cr = R.lstm_step(*refs, step_mask=mask)
        np.testing.assert_allclose(cf.data, cr.data, atol=ATOL)
        out_f = (hf * hf + cf).sum()
        out_r = (hr * hr + cr).sum()
        assert_parity(rng, out_f, out_r, params, refs)

    def test_gradcheck(self, rng):
        hd = 4
        params = [t(rng, 2, 4 * hd), t(rng, 2, hd), t(rng, 2, hd), t(rng, 4 * hd, hd)]

        def loss():
            h, c = F.lstm_step(*params)
            return (h * h + c).sum()

        check_gradients(loss, params)


class TestSmallOps:
    def test_unbind_matches_reference(self, rng):
        x = t(rng, 3, 4, 5)
        xr = clones([x])[0]
        fused = F.unbind(x, axis=1)
        ref = R.unbind(xr, axis=1)
        total_f = sum((s * s).sum() for s in fused)
        total_r = sum((s * s).sum() for s in ref)
        assert_parity(rng, total_f, total_r, [x], [xr])

    def test_linear_gradcheck(self, rng):
        x, w, b = t(rng, 3, 4, 5), t(rng, 6, 5), t(rng, 6)
        check_gradients(lambda: F.linear(x, w, b).sum(), [x, w, b])

    def test_item_rejects_non_scalar(self, rng):
        with pytest.raises(ValueError, match="1-element"):
            Tensor(rng.normal(size=(2, 3))).item()
        assert isinstance(Tensor(np.array(1.5)).item(), float)


class TestDefaultDtype:
    def test_default_is_float32(self):
        assert get_default_dtype() == np.float32
        assert Tensor([1.0, 2.0]).data.dtype == np.float32

    def test_set_and_restore(self):
        set_default_dtype(np.float64)
        try:
            assert Tensor([1.0]).data.dtype == np.float64
        finally:
            set_default_dtype(np.float32)
        assert Tensor([1.0]).data.dtype == np.float32

    def test_no_silent_promotion_through_ops(self, rng):
        x = Tensor(rng.normal(size=(3, 4)).astype(np.float32), requires_grad=True)
        y = F.gelu(F.layer_norm(x, Tensor(np.ones(4, dtype=np.float32)),
                                Tensor(np.zeros(4, dtype=np.float32))))
        assert y.data.dtype == np.float32
        y.sum().backward()
        assert x.grad.dtype == np.float32


def _swap_functional_to_reference(monkeypatch):
    """Point every fused op that has a reference twin at the reference."""
    for name in R.__all__:
        if hasattr(F, name):
            monkeypatch.setattr(F, name, getattr(R, name))


class TestEndToEndParity:
    """Fixed-seed training runs: fused stack vs full reference stack."""

    def _train_losses(self, model_name, steps=3):
        from repro.models import build_classifier

        model = build_classifier(model_name, vocab_size=30, seed=0,
                                 hidden_dim=12, num_layers=2,
                                 **({"num_heads": 2, "ffn_dim": 16, "max_seq_len": 10}
                                    if model_name.startswith("bert") else {}))
        model.train()
        opt = SGD(model.parameters(), lr=0.05)
        data_rng = np.random.default_rng(1)
        ids = data_rng.integers(1, 30, size=(4, 8))
        labels = data_rng.integers(0, 2, size=4)
        mask = _padding_mask(data_rng, 4, 8)
        losses = []
        for _ in range(steps):
            model.zero_grad()
            loss = F.cross_entropy(model(ids, attention_mask=mask), labels)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        return losses

    @pytest.mark.parametrize("model_name", ["bert-mini", "lstm"])
    def test_losses_match_reference_stack(self, monkeypatch, model_name):
        fused_losses = self._train_losses(model_name)
        _swap_functional_to_reference(monkeypatch)
        ref_losses = self._train_losses(model_name)
        np.testing.assert_allclose(fused_losses, ref_losses, atol=1e-4)
        assert fused_losses[-1] != fused_losses[0]  # training actually moved
