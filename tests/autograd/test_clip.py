"""Gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import (
    Parameter,
    clip_grad_norm,
    clip_grad_value,
    grad_global_norm,
)


def params_with_grads():
    p1 = Parameter(np.zeros(3))
    p2 = Parameter(np.zeros((2, 2)))
    p1.grad = np.array([3.0, 0.0, 0.0])
    p2.grad = np.full((2, 2), 2.0)
    return [p1, p2]


class TestGlobalNorm:
    def test_value(self):
        params = params_with_grads()
        assert np.isclose(grad_global_norm(params), np.sqrt(9.0 + 16.0))

    def test_ignores_none(self):
        p = Parameter(np.zeros(2))
        assert grad_global_norm([p]) == 0.0


class TestClipNorm:
    def test_scales_down(self):
        params = params_with_grads()
        before = clip_grad_norm(params, max_norm=1.0)
        assert np.isclose(before, 5.0)
        assert np.isclose(grad_global_norm(params), 1.0)

    def test_no_change_when_under(self):
        params = params_with_grads()
        grads = [p.grad.copy() for p in params]
        clip_grad_norm(params, max_norm=100.0)
        for p, g in zip(params, grads):
            np.testing.assert_allclose(p.grad, g)

    def test_direction_preserved(self):
        params = params_with_grads()
        direction = params[0].grad / np.linalg.norm(params[0].grad)
        clip_grad_norm(params, max_norm=1.0)
        new_direction = params[0].grad / np.linalg.norm(params[0].grad)
        np.testing.assert_allclose(direction, new_direction, atol=1e-9)

    def test_bad_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm(params_with_grads(), max_norm=0.0)


class TestClipValue:
    def test_clamps(self):
        params = params_with_grads()
        clip_grad_value(params, 1.5)
        assert params[0].grad.max() <= 1.5
        assert params[1].grad.max() <= 1.5

    def test_in_place(self):
        params = params_with_grads()
        grad_ref = params[0].grad
        clip_grad_value(params, 1.0)
        assert params[0].grad is grad_ref

    def test_bad_value(self):
        with pytest.raises(ValueError):
            clip_grad_value(params_with_grads(), -1.0)
