"""Graph-lifetime semantics: backward frees interior state (torch-style)."""

from __future__ import annotations

import gc
import weakref

import numpy as np

from repro.autograd import Parameter, Tensor


def test_interior_grads_freed_after_backward():
    a = Tensor(np.ones(3), requires_grad=True)
    b = a * 2.0
    c = b * 3.0
    loss = c.sum()
    loss.backward()
    assert a.grad is not None            # leaf keeps its gradient
    assert b.grad is None and c.grad is None  # interiors freed
    assert loss.grad is None


def test_interior_nodes_collectable_after_backward():
    """Activation memory must be reclaimable once backward finishes."""
    a = Parameter(np.ones((50, 50)))
    big = a @ a.transpose()
    ref = weakref.ref(big)
    loss = big.sum()
    loss.backward()
    del big, loss
    gc.collect()
    assert ref() is None


def test_leaf_grad_survives_and_accumulates():
    a = Parameter(np.ones(2))
    (a * 2.0).sum().backward()
    (a * 2.0).sum().backward()
    np.testing.assert_allclose(a.grad, 4.0)


def test_training_memory_is_bounded():
    """RSS must not grow step over step (no graph leak)."""
    from repro.autograd import Adam, functional as F
    from repro.models import build_classifier

    def rss_kb():
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmRSS"):
                    return int(line.split()[1])
        return 0

    model = build_classifier("bert-tiny", vocab_size=50, seed=0)
    optimizer = Adam(model.parameters(), lr=1e-3)
    rng = np.random.default_rng(0)
    ids = rng.integers(1, 50, size=(16, 16))
    labels = rng.integers(0, 2, size=16)

    def step():
        loss = F.cross_entropy(model(ids), labels)
        model.zero_grad()
        loss.backward()
        optimizer.step()

    for _ in range(3):  # warm up allocator
        step()
    gc.collect()
    before = rss_kb()
    for _ in range(10):
        step()
    gc.collect()
    after = rss_kb()
    assert after - before < 20_000, f"RSS grew {after - before} kB over 10 steps"
