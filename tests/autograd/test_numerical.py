"""The gradient checker itself must detect wrong gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, numerical_grad


def test_numerical_grad_of_quadratic():
    t = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
    grad = numerical_grad(lambda: (t * t).sum(), t)
    np.testing.assert_allclose(grad, 2 * t.data, atol=1e-5)


def test_check_gradients_passes_correct_op():
    t = Tensor(np.array([0.5, -0.5]), requires_grad=True)
    check_gradients(lambda: t.tanh().sum(), [t])


def test_check_gradients_catches_wrong_gradient():
    """A deliberately broken op must be flagged."""
    t = Tensor(np.array([1.0, 2.0]), requires_grad=True)

    def broken():
        out = t * 3.0
        real_backward = out._backward

        def wrong(grad):
            t._accumulate(grad * 2.0)  # claims d/dt = 2, truth is 3

        out._backward = wrong if real_backward else None
        return out.sum()

    with pytest.raises(AssertionError, match="gradient mismatch"):
        check_gradients(broken, [t])


def test_check_gradients_catches_missing_gradient():
    t = Tensor(np.array([1.0]), requires_grad=True)
    u = Tensor(np.array([1.0]), requires_grad=True)

    # loss depends on u but we assert against t's (absent) gradient path
    def fn():
        return (u * u).sum() + Tensor(t.data).sum()  # t detached on purpose

    with pytest.raises(AssertionError):
        check_gradients(fn, [t])
