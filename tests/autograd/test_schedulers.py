"""LR schedulers: trajectories and validation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.autograd import (
    Adam,
    ConstantLR,
    CosineAnnealingLR,
    Parameter,
    StepLR,
    WarmupLinearLR,
)


def make_optimizer(lr=1.0):
    return Adam([Parameter(np.zeros(1))], lr=lr)


class TestConstant:
    def test_never_changes(self):
        opt = make_optimizer(0.01)
        sched = ConstantLR(opt)
        for _ in range(10):
            assert sched.step() == 0.01


class TestStep:
    def test_decays_at_boundaries(self):
        opt = make_optimizer(1.0)
        sched = StepLR(opt, step_size=3, gamma=0.1)
        lrs = [sched.step() for _ in range(7)]
        assert lrs[:2] == [1.0, 1.0]
        assert np.isclose(lrs[2], 0.1)     # epoch 3
        assert np.isclose(lrs[5], 0.01)    # epoch 6

    def test_updates_optimizer(self):
        opt = make_optimizer(1.0)
        StepLR(opt, step_size=1, gamma=0.5).step()
        assert opt.lr == 0.5

    def test_bad_step_size(self):
        with pytest.raises(ValueError):
            StepLR(make_optimizer(), step_size=0)


class TestCosine:
    def test_endpoints(self):
        opt = make_optimizer(1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.1)
        lrs = [sched.step() for _ in range(10)]
        assert np.isclose(lrs[-1], 0.1)
        mid = lrs[4]  # roughly half-way
        assert 0.1 < mid < 1.0

    def test_monotone_decreasing(self):
        opt = make_optimizer(1.0)
        sched = CosineAnnealingLR(opt, t_max=20)
        lrs = [sched.step() for _ in range(20)]
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_clamps_after_t_max(self):
        opt = make_optimizer(1.0)
        sched = CosineAnnealingLR(opt, t_max=5)
        for _ in range(8):
            lr = sched.step()
        assert np.isclose(lr, 0.0, atol=1e-12)


class TestWarmupLinear:
    def test_warms_up_then_decays(self):
        opt = make_optimizer(1.0)
        sched = WarmupLinearLR(opt, warmup_steps=4, total_steps=10)
        lrs = [sched.step() for _ in range(10)]
        assert np.isclose(lrs[0], 0.25)
        assert np.isclose(max(lrs), 1.0)
        assert np.isclose(lrs[-1], 0.0)
        peak = int(np.argmax(lrs))
        assert all(a <= b + 1e-12 for a, b in zip(lrs[:peak], lrs[1:peak + 1]))
        assert all(a >= b - 1e-12 for a, b in zip(lrs[peak:], lrs[peak + 1:]))

    def test_no_warmup(self):
        opt = make_optimizer(1.0)
        sched = WarmupLinearLR(opt, warmup_steps=0, total_steps=4)
        assert sched.step() < 1.0  # immediately decaying

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            WarmupLinearLR(make_optimizer(), warmup_steps=5, total_steps=4)
        with pytest.raises(ValueError):
            WarmupLinearLR(make_optimizer(), warmup_steps=-1, total_steps=4)
