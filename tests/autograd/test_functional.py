"""Functional ops: softmax/cross-entropy/GELU/dropout correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, functional as F


@pytest.fixture()
def rng():
    return np.random.default_rng(3)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(4, 7)))
        probs = F.softmax(x)
        np.testing.assert_allclose(probs.data.sum(axis=-1), np.ones(4), atol=1e-6)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(F.softmax(Tensor(x)).data,
                                   F.softmax(Tensor(x + 100.0)).data, atol=1e-6)

    def test_extreme_values_stable(self):
        x = Tensor(np.array([[1e4, -1e4, 0.0]]))
        probs = F.softmax(x)
        assert np.isfinite(probs.data).all()

    def test_gradient(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 4)))
        check_gradients(lambda: (F.softmax(x) * w).sum(), [x])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(2, 6)))
        np.testing.assert_allclose(F.log_softmax(x).data,
                                   np.log(F.softmax(x).data), atol=1e-6)


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        logits = rng.normal(size=(5, 3))
        targets = rng.integers(0, 3, size=5)
        loss = F.cross_entropy(Tensor(logits), targets)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(5), targets].mean()
        assert np.isclose(float(loss.data), expected, atol=1e-6)

    def test_gradient(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        targets = rng.integers(0, 3, size=4)
        check_gradients(lambda: F.cross_entropy(logits, targets), [logits])

    def test_ignore_index(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        targets = np.array([0, -100, 2, -100])
        loss = F.cross_entropy(logits, targets, ignore_index=-100)
        loss.backward()
        # ignored rows receive zero gradient
        assert np.allclose(logits.grad[1], 0.0) and np.allclose(logits.grad[3], 0.0)
        assert not np.allclose(logits.grad[0], 0.0)

    def test_ignore_index_mean_divides_by_valid_count(self, rng):
        logits_np = rng.normal(size=(4, 3))
        targets = np.array([1, -100, 1, 1])
        loss = F.cross_entropy(Tensor(logits_np), targets, ignore_index=-100)
        dense = F.cross_entropy(Tensor(logits_np[[0, 2, 3]]), targets[[0, 2, 3]])
        assert np.isclose(float(loss.data), float(dense.data), atol=1e-6)

    def test_all_ignored_gives_zero(self, rng):
        logits = Tensor(rng.normal(size=(2, 3)))
        loss = F.cross_entropy(logits, np.array([-100, -100]), ignore_index=-100)
        assert float(loss.data) == 0.0

    def test_3d_logits_flattened(self, rng):
        logits = Tensor(rng.normal(size=(2, 3, 5)))
        targets = rng.integers(0, 5, size=6)
        loss = F.cross_entropy(logits, targets)
        assert loss.data.size == 1

    def test_reductions(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)))
        targets = rng.integers(0, 3, size=4)
        total = F.cross_entropy(logits, targets, reduction="sum")
        mean = F.cross_entropy(logits, targets, reduction="mean")
        per = F.cross_entropy(logits, targets, reduction="none")
        assert np.isclose(float(total.data), float(per.data.sum()), atol=1e-6)
        assert np.isclose(float(mean.data), float(per.data.mean()), atol=1e-6)

    def test_batch_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(rng.normal(size=(3, 2))), np.zeros(4, dtype=int))

    def test_unknown_reduction_rejected(self, rng):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(rng.normal(size=(2, 2))), np.zeros(2, dtype=int),
                            reduction="median")


class TestBinaryCrossEntropy:
    def test_matches_naive_formula(self, rng):
        x = rng.normal(size=(4, 2))
        t = (rng.random((4, 2)) > 0.5).astype(float)
        loss = F.binary_cross_entropy_with_logits(Tensor(x), t)
        p = 1 / (1 + np.exp(-x))
        expected = -(t * np.log(p) + (1 - t) * np.log(1 - p)).mean()
        assert np.isclose(float(loss.data), expected, atol=1e-6)

    def test_stable_at_large_logits(self):
        x = Tensor(np.array([100.0, -100.0]))
        loss = F.binary_cross_entropy_with_logits(x, np.array([1.0, 0.0]))
        assert np.isfinite(float(loss.data)) and float(loss.data) < 1e-6

    def test_gradient(self, rng):
        x = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        t = (rng.random((3, 2)) > 0.5).astype(float)
        check_gradients(lambda: F.binary_cross_entropy_with_logits(x, t), [x])


class TestGeluDropoutMisc:
    def test_gelu_reference_points(self):
        x = Tensor(np.array([0.0, 1.0, -1.0]))
        out = F.gelu(x).data
        assert np.isclose(out[0], 0.0)
        assert np.isclose(out[1], 0.8412, atol=1e-3)   # known GELU(1)
        assert np.isclose(out[2], -0.1588, atol=1e-3)  # known GELU(-1)

    def test_gelu_gradient(self, rng):
        x = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        check_gradients(lambda: F.gelu(x).sum(), [x])

    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_dropout_preserves_expectation(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.25, training=True, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.02
        zero_fraction = (out.data == 0).mean()
        assert abs(zero_fraction - 0.25) < 0.02

    def test_dropout_bad_p(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)

    def test_linear_matches_manual(self, rng):
        x, w, b = (Tensor(rng.normal(size=s)) for s in [(4, 3), (5, 3), (5,)])
        np.testing.assert_allclose(F.linear(x, w, b).data, x.data @ w.data.T + b.data,
                                   atol=1e-6)

    def test_embedding_lookup(self, rng):
        w = Tensor(rng.normal(size=(6, 4)))
        idx = np.array([[0, 5], [2, 2]])
        out = F.embedding(w, idx)
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out.data[0, 1], w.data[5])

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])
