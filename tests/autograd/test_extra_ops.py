"""abs / min / var / std tensor operations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients


@pytest.fixture()
def rng():
    return np.random.default_rng(23)


class TestAbs:
    def test_values(self, rng):
        a = Tensor(rng.normal(size=(3, 3)))
        np.testing.assert_allclose(a.abs().data, np.abs(a.data))

    def test_gradient_signs(self):
        a = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        a.abs().sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, 1.0])

    def test_gradcheck_away_from_zero(self, rng):
        a = Tensor(rng.normal(size=(4,)) + np.sign(rng.normal(size=4)) * 0.5,
                   requires_grad=True)
        check_gradients(lambda: a.abs().sum(), [a])


class TestMin:
    def test_matches_numpy(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(a.min().data, a.data.min())
        np.testing.assert_allclose(a.min(axis=1).data, a.data.min(axis=1))

    def test_gradient_flows_to_argmin(self):
        a = Tensor(np.array([3.0, 1.0, 2.0]), requires_grad=True)
        a.min().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: a.min(axis=0).sum(), [a])


class TestVarStd:
    def test_var_matches_numpy(self, rng):
        a = Tensor(rng.normal(size=(4, 5)))
        np.testing.assert_allclose(a.var().data, a.data.var(), atol=1e-7)
        np.testing.assert_allclose(a.var(axis=1).data, a.data.var(axis=1), atol=1e-7)

    def test_std_matches_numpy(self, rng):
        a = Tensor(rng.normal(size=(4, 5)))
        np.testing.assert_allclose(a.std(axis=0).data, a.data.std(axis=0), atol=1e-7)

    def test_keepdims(self, rng):
        a = Tensor(rng.normal(size=(2, 3)))
        assert a.var(axis=1, keepdims=True).shape == (2, 1)

    def test_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: a.var().sum(), [a])
        check_gradients(lambda: a.std(axis=1).sum(), [a])

    def test_constant_input_zero_variance(self):
        a = Tensor(np.full((2, 3), 7.0))
        np.testing.assert_allclose(a.var().data, 0.0, atol=1e-12)

    def test_std_eps_guards_sqrt(self):
        a = Tensor(np.full(3, 2.0), requires_grad=True)
        out = a.std(eps=1e-8)
        out.backward()  # without eps the sqrt'(0) would be inf
        assert np.isfinite(a.grad).all()
