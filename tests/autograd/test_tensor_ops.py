"""Gradient correctness of every Tensor operation (vs. central differences)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients


def _t(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestArithmetic:
    def test_add(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 3, 4)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_add_broadcast(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_add_scalar(self, rng):
        a = _t(rng, 2, 3)
        check_gradients(lambda: (a + 2.5).sum(), [a])
        check_gradients(lambda: (1.5 + a).sum(), [a])

    def test_mul(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 3, 4)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_mul_broadcast_keepdims(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 3, 1)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_sub_and_neg(self, rng):
        a, b = _t(rng, 5), _t(rng, 5)
        check_gradients(lambda: (a - b).sum(), [a, b])
        check_gradients(lambda: (-a).sum(), [a])
        check_gradients(lambda: (3.0 - a).sum(), [a])

    def test_div(self, rng):
        a = _t(rng, 4)
        b = Tensor(rng.uniform(0.5, 2.0, size=4), requires_grad=True)
        check_gradients(lambda: (a / b).sum(), [a, b])
        check_gradients(lambda: (2.0 / b).sum(), [b])

    def test_pow(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(3, 2)), requires_grad=True)
        check_gradients(lambda: (a ** 3).sum(), [a])
        check_gradients(lambda: (a ** -0.5).sum(), [a])

    def test_pow_tensor_exponent_rejected(self, rng):
        a = _t(rng, 2)
        with pytest.raises(TypeError):
            a ** a  # noqa: B018


class TestMatmul:
    def test_2d(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4, 5)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_batched(self, rng):
        a, b = _t(rng, 2, 3, 4), _t(rng, 2, 4, 5)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_broadcast_batch(self, rng):
        a, b = _t(rng, 2, 3, 4), _t(rng, 4, 5)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_vector_dot(self, rng):
        a, b = _t(rng, 4), _t(rng, 4)
        check_gradients(lambda: a @ b, [a, b])

    def test_matrix_vector(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_vector_matrix(self, rng):
        a, b = _t(rng, 4), _t(rng, 4, 5)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_values_match_numpy(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4, 5)
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)


class TestReductions:
    def test_sum_all(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda: a.sum(), [a])

    def test_sum_axis(self, rng):
        a = _t(rng, 3, 4, 2)
        check_gradients(lambda: a.sum(axis=1).sum(), [a])
        check_gradients(lambda: a.sum(axis=(0, 2)).sum(), [a])
        check_gradients(lambda: a.sum(axis=-1, keepdims=True).sum(), [a])

    def test_mean(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda: a.mean(), [a])
        check_gradients(lambda: a.mean(axis=0).sum(), [a])
        assert np.isclose(a.mean().data, a.data.mean())

    def test_max(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda: a.max(), [a])
        check_gradients(lambda: a.max(axis=1).sum(), [a])
        assert np.allclose(a.max(axis=0).data, a.data.max(axis=0))


class TestElementwise:
    @pytest.mark.parametrize("op", ["exp", "tanh", "sigmoid", "relu", "sqrt"])
    def test_unary(self, rng, op):
        base = rng.uniform(0.2, 2.0, size=(3, 3)) if op == "sqrt" else rng.normal(size=(3, 3))
        a = Tensor(base, requires_grad=True)
        check_gradients(lambda: getattr(a, op)().sum(), [a])

    def test_log(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, size=(2, 3)), requires_grad=True)
        check_gradients(lambda: a.log().sum(), [a])

    def test_clip(self, rng):
        # keep sample points away from the clip boundaries, where the
        # derivative is undefined and central differences disagree
        a = Tensor(np.array([-1.7, -0.4, 0.3, 0.9, 1.6]), requires_grad=True)
        check_gradients(lambda: a.clip(-1.0, 1.0).sum(), [a])
        assert a.clip(-1, 1).data.max() <= 1.0


class TestShapeOps:
    def test_reshape(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda: a.reshape(2, 6).sum(), [a])
        check_gradients(lambda: a.reshape((12,)).sum(), [a])

    def test_transpose(self, rng):
        a = _t(rng, 2, 3, 4)
        check_gradients(lambda: a.transpose().sum(), [a])
        check_gradients(lambda: a.transpose(1, 0, 2).sum(), [a])
        assert a.T.shape == (4, 3, 2)

    def test_swapaxes(self, rng):
        a = _t(rng, 2, 3, 4)
        check_gradients(lambda: a.swapaxes(0, 2).sum(), [a])
        assert a.swapaxes(1, 2).shape == (2, 4, 3)

    def test_getitem_slice(self, rng):
        a = _t(rng, 4, 5)
        check_gradients(lambda: a[1:3, ::2].sum(), [a])

    def test_getitem_fancy(self, rng):
        a = _t(rng, 6, 3)
        idx = np.array([0, 2, 2, 5])
        check_gradients(lambda: a[idx].sum(), [a])

    def test_getitem_fancy_duplicate_accumulates(self, rng):
        a = _t(rng, 4)
        out = a[np.array([1, 1, 1])].sum()
        out.backward()
        assert a.grad is not None and np.isclose(a.grad[1], 3.0)

    def test_getitem_tuple(self, rng):
        a = _t(rng, 4, 5)
        rows = np.array([0, 1, 3])
        cols = np.array([2, 2, 4])
        check_gradients(lambda: a[(rows, cols)].sum(), [a])

    def test_masked_fill(self, rng):
        a = _t(rng, 3, 4)
        mask = rng.random((3, 4)) > 0.5
        filled = a.masked_fill(mask, -9.0)
        assert np.all(filled.data[mask] == -9.0)
        check_gradients(lambda: a.masked_fill(mask, -9.0).sum(), [a])


class TestJoinOps:
    def test_concatenate(self, rng):
        a, b = _t(rng, 2, 3), _t(rng, 4, 3)
        out = Tensor.concatenate([a, b], axis=0)
        assert out.shape == (6, 3)
        check_gradients(lambda: Tensor.concatenate([a, b], axis=0).sum(), [a, b])

    def test_concatenate_axis1(self, rng):
        a, b = _t(rng, 2, 3), _t(rng, 2, 5)
        check_gradients(lambda: Tensor.concatenate([a, b], axis=1).sum(), [a, b])

    def test_stack(self, rng):
        parts = [_t(rng, 3, 2) for _ in range(4)]
        out = Tensor.stack(parts, axis=1)
        assert out.shape == (3, 4, 2)
        check_gradients(lambda: Tensor.stack(parts, axis=1).sum(), parts)
