"""Properties of the array-backend registry and the shipped backends.

The fused-kernel *numerics* are covered by ``test_fused_ops.py`` (which runs
its whole oracle/gradcheck suite under every registered backend); this file
pins the seam itself: selection round-trips, unknown names fail loudly,
scoping restores, the environment hook works in a fresh interpreter, and the
fastmath substitutions stay inside their declared tolerance.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.autograd import (
    available_backends,
    blas_thread_info,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from repro.autograd import backend as backend_module
from repro.autograd.backend import (
    ArrayBackend,
    BlasBackend,
    FastmathBackend,
    NumpyBackend,
    active_backend,
)

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


class TestRegistry:
    def test_ships_three_backends(self):
        assert set(available_backends()) >= {"numpy", "blas", "fastmath"}

    def test_default_active_is_numpy(self):
        # the suite may be running under a use_backend scope; check the
        # registry's resting default via a fresh interpreter instead
        assert "numpy" in available_backends()

    @pytest.mark.parametrize("name", ["numpy", "blas", "fastmath"])
    def test_set_backend_round_trips(self, name):
        previous = set_backend(name)
        try:
            assert get_backend() == name
            assert active_backend().name == name
        finally:
            assert set_backend(previous) == name
        assert get_backend() == previous

    def test_set_backend_is_idempotent(self):
        current = get_backend()
        assert set_backend(current) == current
        assert get_backend() == current

    def test_unknown_name_fails_loudly(self):
        before = get_backend()
        with pytest.raises(ValueError, match="unknown array backend"):
            set_backend("cuda")
        with pytest.raises(ValueError, match="available: .*numpy"):
            set_backend("definitely-not-a-backend")
        assert get_backend() == before  # a failed switch changes nothing

    def test_use_backend_scopes_and_restores(self):
        before = get_backend()
        target = "fastmath" if before != "fastmath" else "numpy"
        with use_backend(target) as active:
            assert active.name == target
            assert get_backend() == target
        assert get_backend() == before

    def test_use_backend_restores_on_exception(self):
        before = get_backend()
        target = "fastmath" if before != "fastmath" else "numpy"
        with pytest.raises(RuntimeError, match="boom"):
            with use_backend(target):
                raise RuntimeError("boom")
        assert get_backend() == before

    def test_register_rejects_abstract_and_duplicates(self):
        with pytest.raises(ValueError, match="concrete"):
            register_backend(ArrayBackend())
        with pytest.raises(ValueError, match="already registered"):
            register_backend(NumpyBackend())

    def test_register_replace_and_custom_backend(self):
        class Doubling(NumpyBackend):
            name = "test-doubling"

        try:
            register_backend(Doubling())
            assert "test-doubling" in available_backends()
            with pytest.raises(ValueError, match="already registered"):
                register_backend(Doubling())
            register_backend(Doubling(), replace=True)
            with use_backend("test-doubling"):
                assert active_backend().name == "test-doubling"
        finally:
            with backend_module._lock:
                backend_module._registry.pop("test-doubling", None)


class TestEnvironmentHook:
    def _probe(self, env_value):
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        if env_value is None:
            env.pop("REPRO_BACKEND", None)
        else:
            env["REPRO_BACKEND"] = env_value
        return subprocess.run(
            [sys.executable, "-c",
             "from repro.autograd import get_backend; print(get_backend())"],
            env=env, capture_output=True, text=True)

    def test_unset_defaults_to_numpy(self):
        result = self._probe(None)
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "numpy"

    def test_env_selects_backend(self):
        result = self._probe("fastmath")
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "fastmath"

    def test_env_unknown_name_aborts_import(self):
        result = self._probe("no-such-backend")
        assert result.returncode != 0
        assert "unknown array backend" in result.stderr


class TestBlasBackend:
    def test_thread_info_schema(self):
        info = blas_thread_info()
        assert set(info) == {"library", "controllable", "threads"}
        if info["controllable"]:
            assert info["threads"] >= 1

    def test_describe_reports_target(self):
        backend = BlasBackend(threads=2)
        info = backend.describe()
        assert info["name"] == "blas"
        assert info["tolerance"] == 0.0
        assert info["target_threads"] == 2

    def test_env_var_sets_target(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLAS_THREADS", "3")
        assert BlasBackend()._target_threads() == 3
        monkeypatch.setenv("REPRO_BLAS_THREADS", "0")
        assert BlasBackend()._target_threads() == 1  # clamped to >= 1

    def test_activate_deactivate_restores_pool(self):
        if not blas_thread_info()["controllable"]:
            pytest.skip("BLAS exposes no thread controls here")
        before = blas_thread_info()["threads"]
        backend = BlasBackend(threads=1)
        backend.activate()
        try:
            assert blas_thread_info()["threads"] == 1
        finally:
            backend.deactivate()
        assert blas_thread_info()["threads"] == before


class TestFastmathNumerics:
    def test_sigmoid_within_declared_tolerance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0.0, 4.0, size=20000).astype(np.float32)
        exact = NumpyBackend().sigmoid(x)
        fast = FastmathBackend().sigmoid(x)
        tolerance = FastmathBackend().describe()["tolerance"]
        assert float(np.abs(fast - exact).max()) <= tolerance

    def test_blocked_gelu_bit_identical_to_unblocked(self):
        # same float ops in the same order per element => the cache-blocked
        # path must agree with the reference *exactly*, not approximately
        fast = FastmathBackend()
        rng = np.random.default_rng(1)
        x = rng.normal(0.0, 2.0, size=fast._min_blocked + 7).astype(np.float32)
        out_f, t_f, sq_f = fast.gelu_forward(x)
        out_n, t_n, sq_n = NumpyBackend().gelu_forward(x)
        np.testing.assert_array_equal(out_f, out_n)
        np.testing.assert_array_equal(t_f, t_n)
        np.testing.assert_array_equal(sq_f, sq_n)
        grad = rng.normal(size=x.shape).astype(np.float32)
        np.testing.assert_array_equal(
            fast.gelu_backward(grad, x, t_f, sq_f),
            NumpyBackend().gelu_backward(grad, x, t_n, sq_n))

    def test_small_and_noncontiguous_fall_back(self):
        fast = FastmathBackend()
        rng = np.random.default_rng(2)
        small = rng.normal(size=64).astype(np.float32)
        np.testing.assert_array_equal(fast.gelu_forward(small)[0],
                                      NumpyBackend().gelu_forward(small)[0])
        strided = rng.normal(
            size=(2 * fast._min_blocked, 2)).astype(np.float32)[:, 0]
        assert not strided.flags.c_contiguous
        np.testing.assert_array_equal(fast.gelu_forward(strided)[0],
                                      NumpyBackend().gelu_forward(strided)[0])
