"""State-dict persistence: files and bytes, including property-based checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import (
    load_state_dict,
    save_state_dict,
    state_dict_from_bytes,
    state_dict_to_bytes,
)


def sample_state():
    return {
        "encoder.layer.0.weight": np.arange(6, dtype=np.float32).reshape(2, 3),
        "encoder.layer.0.bias": np.zeros(3),
        "head.weight": np.random.default_rng(0).normal(size=(4, 4)),
    }


class TestFileRoundtrip:
    def test_roundtrip(self, tmp_path):
        path = save_state_dict(sample_state(), tmp_path / "model")
        assert path.suffix == ".npz"
        loaded = load_state_dict(path)
        for key, value in sample_state().items():
            np.testing.assert_allclose(loaded[key], value)

    def test_dotted_names_preserved(self, tmp_path):
        path = save_state_dict(sample_state(), tmp_path / "m.npz")
        assert "encoder.layer.0.weight" in load_state_dict(path)

    def test_creates_parent_dirs(self, tmp_path):
        path = save_state_dict(sample_state(), tmp_path / "a" / "b" / "model")
        assert path.exists()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state_dict(tmp_path / "nope.npz")


class TestBytesRoundtrip:
    def test_roundtrip(self):
        blob = state_dict_to_bytes(sample_state())
        loaded = state_dict_from_bytes(blob)
        assert set(loaded) == set(sample_state())

    def test_dtype_preserved(self):
        state = {"x": np.ones(3, dtype=np.float32), "y": np.ones(3, dtype=np.float64)}
        loaded = state_dict_from_bytes(state_dict_to_bytes(state))
        assert loaded["x"].dtype == np.float32
        assert loaded["y"].dtype == np.float64

    @settings(max_examples=25, deadline=None)
    @given(hnp.arrays(dtype=np.float32,
                      shape=hnp.array_shapes(max_dims=3, max_side=5),
                      elements=st.floats(-1e6, 1e6, width=32)))
    def test_property_roundtrip(self, array):
        loaded = state_dict_from_bytes(state_dict_to_bytes({"w": array}))
        np.testing.assert_array_equal(loaded["w"], array)
