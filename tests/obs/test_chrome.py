"""Chrome trace-event export: mapping, units, aborted spans, round-trip."""

from __future__ import annotations

import json

from repro.obs import Tracer, to_chrome_trace
from repro.obs.chrome import export_chrome_trace
from repro.obs.report import load_trace_events
from repro.obs.session import TelemetrySession
from repro.obs import trace as obs_trace


def sample_records():
    return [
        {"schema": "repro.obs.trace/v2", "trace_id": "t" * 32,
         "process": "server"},
        {"span_id": "server-000001", "parent_id": None, "name": "round",
         "process": "server", "thread": "MainThread",
         "t_start": 0.0, "t_end": 0.5, "wall_s": 0.5, "excl_s": 0.1,
         "attrs": {"round": 0}},
        {"span_id": "site-1-000001", "parent_id": "server-000001",
         "name": "client_task", "process": "site-1", "thread": "MainThread",
         "t_start": 0.1, "t_end": 0.4, "wall_s": 0.3, "excl_s": 0.3,
         "attrs": {"client": "site-1", "round": 0}},
        {"span_id": "site-1-000002", "parent_id": "site-1-000001",
         "name": "local_train", "process": "site-1", "thread": "MainThread",
         "t_start": 0.15, "t_end": None, "wall_s": None, "excl_s": 0.0,
         "attrs": {}, "status": "aborted"},
        {"event": "end", "trace_id": "t" * 32, "n_records": 3},
    ]


class TestToChromeTrace:
    def test_processes_and_threads_get_metadata(self):
        payload = to_chrome_trace(sample_records())
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "server") in names
        assert ("process_name", "site-1") in names
        assert ("thread_name", "MainThread") in names
        # distinct processes map to distinct pids
        pids = {e["pid"] for e in meta if e["name"] == "process_name"}
        assert len(pids) == 2

    def test_complete_events_in_microseconds(self):
        payload = to_chrome_trace(sample_records())
        events = {e["args"].get("span_id"): e
                  for e in payload["traceEvents"] if e["ph"] == "X"}
        round_event = events["server-000001"]
        assert round_event["ts"] == 0.0
        assert round_event["dur"] == 500000.0
        task = events["site-1-000001"]
        assert task["ts"] == 100000.0
        assert task["dur"] == 300000.0
        assert task["args"]["parent_id"] == "server-000001"
        assert task["args"]["client"] == "site-1"
        assert task["pid"] != round_event["pid"]

    def test_aborted_span_survives_as_zero_duration(self):
        payload = to_chrome_trace(sample_records())
        aborted = next(e for e in payload["traceEvents"]
                       if e.get("args", {}).get("span_id") == "site-1-000002")
        assert aborted["dur"] == 0.0
        assert aborted["args"]["status"] == "aborted"
        assert aborted["cat"] == "aborted"

    def test_trace_id_carried_in_other_data(self):
        payload = to_chrome_trace(sample_records())
        assert payload["otherData"]["trace_id"] == "t" * 32


class TestRoundTrip:
    def test_real_session_exports_and_reimports(self, tmp_path):
        with TelemetrySession(tmp_path, metrics=False, profile=False,
                              process="server") as session:
            with obs_trace.span("round", round=0):
                with obs_trace.span("aggregate", round=0):
                    pass
        out = export_chrome_trace(tmp_path / "trace.jsonl")
        assert out.name == "trace.chrome.json"
        payload = json.loads(out.read_text())
        source = load_trace_events(tmp_path / "trace.jsonl")
        source_spans = [r for r in source if "span_id" in r]
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        # one X event per span, same names, same ids, matching timings
        assert len(complete) == len(source_spans)
        by_id = {e["args"]["span_id"]: e for e in complete}
        for record in source_spans:
            event = by_id[record["span_id"]]
            assert event["name"] == record["name"]
            assert event["ts"] == round(record["t_start"] * 1e6, 1)
            assert event["dur"] == round(
                (record["t_end"] - record["t_start"]) * 1e6, 1)
        assert payload["otherData"]["trace_id"] == session.tracer.trace_id

    def test_export_honours_output_path(self, tmp_path):
        tracer = Tracer(process="server")
        with tracer.span("round"):
            pass
        trace_path = tracer.export_jsonl(tmp_path / "trace.jsonl")
        out = export_chrome_trace(trace_path, tmp_path / "custom.json")
        assert out == tmp_path / "custom.json"
        assert json.loads(out.read_text())["traceEvents"]
