"""SysMonitor tests: /proc sampling, gauge publishing and the forked-worker
path (child samples merged into the parent's metrics.json with process tags).
"""

import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "flare"))
from helpers import ToyLearner, toy_weights  # noqa: E402

from repro.flare import FLJob, SimulatorRunner  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.obs.sysmon import SysMonitor, read_proc_sample  # noqa: E402


def test_read_proc_sample_shape():
    sample = read_proc_sample()
    assert sample["rss_bytes"] > 0
    assert sample["cpu_seconds"] >= 0.0
    assert sample["open_fds"] > 0
    assert sample["shm_bytes"] >= 0
    assert len(sample["gc_collections"]) == 3


def test_read_proc_sample_never_raises_on_bad_glob():
    sample = read_proc_sample(shm_glob="/nonexistent/nowhere-*")
    assert sample["shm_bytes"] == 0


def test_sample_publishes_tagged_gauges():
    registry = MetricsRegistry()
    monitor = SysMonitor(registry=registry, interval=None, process="server")
    monitor.sample()
    gauges = {(g["name"], tuple(sorted(g["tags"].items()))): g["value"]
              for g in registry.to_dict()["gauges"]}
    tag = (("process", "server"),)
    assert gauges[("sys.rss_bytes", tag)] > 0
    assert gauges[("sys.open_fds", tag)] > 0
    assert gauges[("sys.peak_rss_bytes", tag)] >= gauges[("sys.rss_bytes", tag)]
    assert ("sys.gc_collections", (("gen", "0"),) + tag) in gauges


def test_peak_tracks_high_water():
    registry = MetricsRegistry()
    monitor = SysMonitor(registry=registry, interval=None)
    monitor.sample()
    first_peak = monitor.peak_rss_bytes
    assert first_peak > 0
    ballast = bytearray(32 << 20)  # +32 MiB
    monitor.sample()
    del ballast
    assert monitor.peak_rss_bytes >= first_peak


def test_start_stop_without_thread():
    monitor = SysMonitor(registry=MetricsRegistry(), interval=None)
    with monitor:
        pass
    assert monitor.samples_taken == 2  # one on start, one on stop


def test_background_thread_samples():
    monitor = SysMonitor(registry=MetricsRegistry(), interval=0.05)
    monitor.start()
    time.sleep(0.3)
    monitor.stop()
    assert monitor.samples_taken >= 3


def test_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        SysMonitor(interval=0)


def test_resolves_process_registry_lazily():
    from repro.obs import metrics as obs_metrics

    session_registry = MetricsRegistry()
    monitor = SysMonitor(interval=None, process="lazy")
    previous = obs_metrics.set_registry(session_registry)
    try:
        monitor.sample()
    finally:
        obs_metrics.set_registry(previous)
    names = {g["name"] for g in session_registry.to_dict()["gauges"]}
    assert "sys.rss_bytes" in names


# ---------------------------------------------------------------------------
# forked workers: child samples merge with process tags
# ---------------------------------------------------------------------------
def test_worker_sysmon_gauges_merge_with_process_tags(tmp_path):
    job = FLJob(name="sysmon-shm", initial_weights=toy_weights(0.0),
                learner_factory=ToyLearner, num_rounds=2)
    runner = SimulatorRunner(job, n_clients=2, seed=0, run_dir=tmp_path,
                             transport="shm", metrics_port=0)
    result = runner.run()

    import json
    metrics = json.loads((tmp_path / "metrics.json").read_text())
    rss_processes = {g["tags"].get("process")
                     for g in metrics["gauges"] if g["name"] == "sys.rss_bytes"}
    # the server AND every forked client sampled itself; the merge keeps
    # them apart via the process tag
    assert rss_processes == {"server", "site-1", "site-2"}
    for site in ("site-1", "site-2"):
        values = [g["value"] for g in metrics["gauges"]
                  if g["name"] == "sys.rss_bytes"
                  and g["tags"].get("process") == site]
        assert values and values[0] > 0

    # the parent's peak lands on stats for the registry diff dimension
    assert result.stats.peak_rss_bytes > 0
    stats = json.loads((tmp_path / "stats.json").read_text())
    assert stats["peak_rss_bytes"] == result.stats.peak_rss_bytes


def test_sysmon_off_by_default(tmp_path):
    job = FLJob(name="sysmon-off", initial_weights=toy_weights(0.0),
                learner_factory=ToyLearner, num_rounds=1)
    runner = SimulatorRunner(job, n_clients=2, seed=0, run_dir=tmp_path,
                             telemetry=True)
    result = runner.run()
    import json
    metrics = json.loads((tmp_path / "metrics.json").read_text())
    assert not any(g["name"].startswith("sys.") for g in metrics["gauges"])
    assert result.stats.peak_rss_bytes == 0
    assert runner.metrics_exporter is None
