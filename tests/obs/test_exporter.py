"""Exporter tests: Prometheus text rendering, the HTTP endpoint and the
/healthz view of a quarantining run."""

import json
import sys
import urllib.request
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "flare"))
from helpers import ToyLearner, toy_weights  # noqa: E402

from repro.flare import DXO, FLJob, SimulatorRunner  # noqa: E402
from repro.obs.exporter import (  # noqa: E402
    MetricsExporter,
    escape_label_value,
    parse_prometheus_text,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.health import HealthMonitor, default_detectors  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402


# ---------------------------------------------------------------------------
# text format
# ---------------------------------------------------------------------------
def test_sanitize_metric_name():
    assert sanitize_metric_name("sys.rss_bytes") == "sys_rss_bytes"
    assert sanitize_metric_name("transport.bytes-raw") == "transport_bytes_raw"
    assert sanitize_metric_name("9lives") == "_9lives"
    assert sanitize_metric_name("") == "_"


def test_escape_label_value():
    assert escape_label_value('a"b') == r'a\"b'
    assert escape_label_value("a\\b") == "a\\\\b"
    assert escape_label_value("a\nb") == r"a\nb"


def test_render_counter_and_gauge_golden():
    registry = MetricsRegistry()
    registry.counter("federation.rounds").inc(3)
    registry.gauge("sys.rss_bytes", process="server").set(1024)
    text = render_prometheus([registry.to_dict()])
    assert "# TYPE federation_rounds counter\nfederation_rounds 3\n" in text
    assert ("# TYPE sys_rss_bytes gauge\n"
            'sys_rss_bytes{process="server"} 1024\n') in text
    assert text.endswith("\n")


def test_render_histogram_cumulative_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("step.seconds", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 5.0):
        hist.observe(value)
    text = render_prometheus([registry.to_dict()])
    assert "# TYPE step_seconds histogram" in text
    assert 'step_seconds_bucket{le="0.1"} 1' in text
    assert 'step_seconds_bucket{le="1"} 3' in text
    assert 'step_seconds_bucket{le="+Inf"} 4' in text
    assert "step_seconds_count 4" in text
    assert "step_seconds_sum 6.05" in text


def test_render_escapes_label_values():
    registry = MetricsRegistry()
    registry.gauge("g", site='we"ird\nname').set(1)
    text = render_prometheus([registry.to_dict()])
    assert r'site="we\"ird\nname"' in text
    (name, labels, value), = parse_prometheus_text(text)
    assert labels == {"site": 'we"ird\nname'}


def test_render_later_snapshot_wins_on_collision():
    stale, fresh = MetricsRegistry(), MetricsRegistry()
    stale.gauge("sys.rss_bytes", process="site-1").set(100)
    fresh.gauge("sys.rss_bytes", process="site-1").set(999)
    text = render_prometheus([stale.to_dict(), fresh.to_dict()])
    assert text.count("sys_rss_bytes{") == 1
    assert 'sys_rss_bytes{process="site-1"} 999' in text


def test_parse_round_trip_and_malformed():
    registry = MetricsRegistry()
    registry.counter("c", k="v").inc(2)
    registry.gauge("g").set(1.5)
    samples = parse_prometheus_text(render_prometheus([registry.to_dict()]))
    assert ("c", {"k": "v"}, 2.0) in samples
    assert ("g", {}, 1.5) in samples
    with pytest.raises(ValueError):
        parse_prometheus_text("this is { not a metric line")


# ---------------------------------------------------------------------------
# HTTP endpoint
# ---------------------------------------------------------------------------
def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read()


def test_http_metrics_and_healthz():
    registry = MetricsRegistry()
    registry.gauge("sys.rss_bytes", process="server").set(7)
    with MetricsExporter(port=0, sources=[registry.to_dict]) as exporter:
        assert exporter.port != 0  # bound to a real ephemeral port
        status, body = _get(exporter.url + "/metrics")
        assert status == 200
        samples = parse_prometheus_text(body.decode())
        assert ("sys_rss_bytes", {"process": "server"}, 7.0) in samples

        status, body = _get(exporter.url + "/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok", "health_monitor": False}

        with pytest.raises(urllib.error.HTTPError) as err:
            _get(exporter.url + "/nope")
        assert err.value.code == 404


def test_http_source_added_mid_serve():
    with MetricsExporter(port=0) as exporter:
        assert parse_prometheus_text(_get(exporter.url + "/metrics")[1].decode()) == []
        late = MetricsRegistry()
        late.counter("federation.rounds").inc()
        exporter.add_source(late.to_dict)
        samples = parse_prometheus_text(_get(exporter.url + "/metrics")[1].decode())
        assert ("federation_rounds", {}, 1.0) in samples


def test_broken_source_does_not_break_scrape():
    registry = MetricsRegistry()
    registry.counter("ok").inc()

    def explode():
        raise RuntimeError("torn down")

    exporter = MetricsExporter(port=0, sources=[explode, registry.to_dict])
    assert ("ok", {}, 1.0) in parse_prometheus_text(exporter.render())


# ---------------------------------------------------------------------------
# /healthz reflects a quarantined client mid-run (chaos)
# ---------------------------------------------------------------------------
BAD_SITE = "site-2"


class DivergingLearner(ToyLearner):
    """One site pushes the weights hard the wrong way every round."""

    def train(self, dxo: DXO, fl_ctx) -> DXO:
        result = super().train(dxo, fl_ctx)
        if self.site_name == BAD_SITE:
            result.data = {key: np.asarray(value) - 40.0
                           for key, value in result.data.items()}
        return result


def test_healthz_reflects_quarantine_mid_run(tmp_path):
    monitor = HealthMonitor(run_dir=tmp_path, detectors=default_detectors(),
                            quarantine_after=2, quarantine_rounds=2)
    seen: list[dict] = []

    def evaluator(weights):
        # Runs on the controller thread at the end of every round: scrape
        # /healthz exactly as a live probe would, while the run is going.
        exporter = runner.metrics_exporter
        if exporter is not None:
            with urllib.request.urlopen(exporter.url + "/healthz",
                                        timeout=5) as response:
                seen.append(json.loads(response.read()))
        return {"valid_acc": float(np.mean(weights["layer.weight"]))}

    job = FLJob(name="healthz-chaos", initial_weights=toy_weights(0.0),
                learner_factory=DivergingLearner, num_rounds=6,
                min_clients=2,  # rounds stay quorate once BAD_SITE is out
                evaluator=evaluator)
    runner = SimulatorRunner(job, n_clients=3, seed=7, run_dir=tmp_path,
                             health=monitor, metrics_port=0)
    result = runner.run()

    assert BAD_SITE in result.stats.quarantined_clients
    assert len(seen) == 6
    # at least one mid-run probe saw the quarantine while it was active
    quarantined_probes = [p for p in seen if BAD_SITE in p.get("quarantined", [])]
    assert quarantined_probes, f"no probe saw the quarantine: {seen}"
    for probe in quarantined_probes:
        assert probe["status"] == "critical"
        assert probe["health_monitor"] is True
        assert probe["rounds"] >= 1
        assert any(alert["client"] == BAD_SITE for alert in probe["alerts"])
    # the exporter is torn down with the session
    assert runner.metrics_exporter is None
