"""Run registry: summaries, name resolution, diff verdicts, CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro.obs.registry import (
    DiffThresholds,
    RunRegistry,
    diff_runs,
    render_diff,
    render_list,
    render_show,
    summarize_run,
)
from repro.obs.report import main as obs_main


def make_run(path, *, acc=0.8, bytes_per_round=1000, critical=0, warning=0,
             step_p50=0.01):
    """A minimal but schema-correct run directory."""
    path.mkdir(parents=True, exist_ok=True)
    rounds = [{"round_number": r, "bytes_on_wire": bytes_per_round,
               "seconds": 0.1, "global_metrics": {"valid_acc": acc}}
              for r in range(3)]
    (path / "stats.json").write_text(json.dumps(
        {"rounds": rounds, "failed_rounds": 0, "dropped_clients": []}))
    (path / "metrics.json").write_text(json.dumps({
        "schema": "repro.obs.metrics/v1", "counters": [], "gauges": [],
        "histograms": [
            {"name": "train.step_seconds", "tags": {"objective": "classifier"},
             "count": 10, "p50": step_p50},
            {"name": "federation.round_bytes", "tags": {},
             "count": 3, "p50": bytes_per_round},
        ]}))
    lines = [json.dumps({"schema": "repro.obs.health/v1"})]
    for r in range(3):
        lines.append(json.dumps({"event": "round", "round_number": r,
                                 "clients": {}, "quarantined": []}))
    for i in range(critical):
        lines.append(json.dumps({"event": "alert", "detector": "nan-update",
                                 "severity": "critical", "round_number": i}))
    for i in range(warning):
        lines.append(json.dumps({"event": "alert", "detector": "straggler",
                                 "severity": "warning", "round_number": i}))
    (path / "health.jsonl").write_text("\n".join(lines) + "\n")
    return path


class TestSummarize:
    def test_full_run(self, tmp_path):
        summary = summarize_run(make_run(tmp_path / "a", critical=2))
        assert summary["kind"] == "run"
        assert summary["rounds"] == 3
        dims = summary["dims"]
        assert dims["final_metric{valid_acc}"] == pytest.approx(0.8)
        assert dims["round_bytes_p50"] == 1000
        assert dims["alerts_critical"] == 2
        assert dims["step_time_p50{objective=classifier}"] == pytest.approx(0.01)
        assert summary["absent"] == []

    def test_partial_run_lists_absent(self, tmp_path):
        run = tmp_path / "partial"
        run.mkdir()
        (run / "health.jsonl").write_text(
            json.dumps({"schema": "repro.obs.health/v1"}) + "\n")
        summary = summarize_run(run)
        assert "stats.json" in summary["absent"]
        assert "metrics.json" in summary["absent"]

    def test_truncated_health_tolerated(self, tmp_path):
        run = make_run(tmp_path / "a")
        with (run / "health.jsonl").open("a") as fh:
            fh.write('{"event": "alert", "sever')  # aborted mid-write
        summary = summarize_run(run)
        assert summary["health"]["rounds"] == 3

    def test_bench_file(self, tmp_path):
        bench = tmp_path / "BENCH_pr9.json"
        bench.write_text(json.dumps({
            "protocol": {"pr": 9},
            "metrics": {"histograms": [
                {"name": "bench.step_seconds",
                 "tags": {"side": "candidate", "model": "bert-mini"},
                 "count": 5, "p50": 0.2}]}}))
        summary = summarize_run(bench)
        assert summary["kind"] == "bench"
        assert summary["dims"]["step_time_p50{model=bert-mini}"] == pytest.approx(0.2)

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            summarize_run(tmp_path / "nope")


class TestRegistry:
    def test_register_resolve_list(self, tmp_path):
        run = make_run(tmp_path / "runs" / "a")
        registry = RunRegistry(tmp_path / "runs")
        registry.register(run, name="baseline", note="seed run")
        assert registry.resolve("baseline") == run
        listed = registry.list_runs()
        assert [e["name"] for e in listed] == ["baseline"]
        # unregistered run dirs under the root are discovered
        make_run(tmp_path / "runs" / "b")
        names = {e["name"]: e.get("registered") for e in registry.list_runs()}
        assert names == {"baseline": True, "b": False}

    def test_register_overwrites_same_name(self, tmp_path):
        registry = RunRegistry(tmp_path)
        a = make_run(tmp_path / "a")
        b = make_run(tmp_path / "b")
        registry.register(a, name="x")
        registry.register(b, name="x")
        assert registry.resolve("x") == b
        assert len(registry.entries()) == 1

    def test_resolve_falls_back_to_path(self, tmp_path):
        run = make_run(tmp_path / "a")
        assert RunRegistry(tmp_path / "nowhere").resolve(str(run)) == run

    def test_unknown_ref_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunRegistry(tmp_path).resolve("ghost")


class TestDiff:
    def test_identical_runs_ok(self, tmp_path):
        a = make_run(tmp_path / "a")
        report = diff_runs(a, a)
        assert report.exit_code == 0
        assert all(line.verdict == "ok" for line in report.lines)

    def test_new_critical_alert_is_regression(self, tmp_path):
        a = make_run(tmp_path / "a")
        b = make_run(tmp_path / "b", critical=1)
        report = diff_runs(a, b)
        assert report.exit_code == 2
        dims = {line.dimension: line.verdict for line in report.lines}
        assert dims["alerts_critical"] == "regression"

    def test_metric_drop_is_regression_and_gain_improves(self, tmp_path):
        a = make_run(tmp_path / "a", acc=0.80)
        worse = make_run(tmp_path / "w", acc=0.70)
        better = make_run(tmp_path / "g", acc=0.90)
        assert diff_runs(a, worse).exit_code == 2
        report = diff_runs(a, better)
        assert report.exit_code == 0
        verdicts = {l.dimension: l.verdict for l in report.lines}
        assert verdicts["final_metric{valid_acc}"] == "improved"

    def test_bytes_blowup_respects_threshold(self, tmp_path):
        a = make_run(tmp_path / "a", bytes_per_round=1000)
        b = make_run(tmp_path / "b", bytes_per_round=1050)
        c = make_run(tmp_path / "c", bytes_per_round=2000)
        assert diff_runs(a, b).exit_code == 0  # +5% < 10% tolerance
        assert diff_runs(a, c).exit_code == 2

    def test_dimension_filter(self, tmp_path):
        a = make_run(tmp_path / "a")
        b = make_run(tmp_path / "b", step_p50=10.0, bytes_per_round=1000)
        report = diff_runs(a, b, dimensions=["round_bytes", "alerts"])
        assert report.exit_code == 0  # the step-time blowup is filtered out
        assert all(not l.dimension.startswith("step_time")
                   for l in report.lines)

    def test_missing_dimension_is_nonfatal(self, tmp_path):
        a = make_run(tmp_path / "a")
        b = tmp_path / "b"
        b.mkdir()
        (b / "stats.json").write_text(json.dumps({"rounds": []}))
        report = diff_runs(a, b)
        assert report.exit_code == 0
        assert all(line.verdict == "missing" for line in report.lines)

    def test_loss_metric_lower_is_better(self, tmp_path):
        a = make_run(tmp_path / "a")
        b = make_run(tmp_path / "b")
        for path, loss in ((a, 0.5), (b, 0.9)):
            stats = json.loads((path / "stats.json").read_text())
            for r in stats["rounds"]:
                r["global_metrics"] = {"valid_loss": loss}
            (path / "stats.json").write_text(json.dumps(stats))
        report = diff_runs(a, b, dimensions=["final_metric"])
        assert report.exit_code == 2

    def test_renderers_dont_crash(self, tmp_path):
        a = make_run(tmp_path / "a", critical=1)
        registry = RunRegistry(tmp_path)
        registry.register(a, name="a")
        assert "a" in render_list(registry)
        assert "alerts" in render_show(summarize_run(a))
        out = render_diff(diff_runs(a, a))
        assert "no regressions" in out


class TestCli:
    def test_runs_diff_exit_codes(self, tmp_path, capsys):
        a = make_run(tmp_path / "a")
        b = make_run(tmp_path / "b", critical=1)
        root = str(tmp_path)
        assert obs_main(["runs", "register", str(a), "--name", "base",
                         "--root", root]) == 0
        assert obs_main(["runs", "diff", "base", str(a), "--root", root]) == 0
        assert obs_main(["runs", "diff", "base", str(b), "--root", root]) == 2
        assert obs_main(["runs", "diff", "base", "ghost", "--root", root]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "error:" in out

    def test_runs_list_and_show(self, tmp_path, capsys):
        make_run(tmp_path / "a")
        assert obs_main(["runs", "list", "--root", str(tmp_path)]) == 0
        assert obs_main(["runs", "show", str(tmp_path / "a"),
                         "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "dimensions:" in out

    def test_diff_json_output(self, tmp_path, capsys):
        a = make_run(tmp_path / "a")
        assert obs_main(["runs", "diff", str(a), str(a), "--root",
                         str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"] == 0
