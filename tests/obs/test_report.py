"""The run-report CLI: rendering of metrics, trace trees and profiles."""

from __future__ import annotations

import time

import pytest

from repro.obs import TelemetrySession, metrics, trace
from repro.obs.report import (main, render_metrics, render_profile,
                              render_report, render_trace)


@pytest.fixture
def run_dir(tmp_path):
    """A real telemetry run directory with all three artifacts."""
    with TelemetrySession(tmp_path):
        metrics.counter("transport.messages", topic="train").inc(6)
        metrics.histogram("train.step_seconds",
                          objective="classifier").observe(0.02)
        with trace.span("round", round=0):
            with trace.span("aggregate"):
                time.sleep(0.001)
    return tmp_path


class TestRenderMetrics:
    def test_counters_gauges_histograms(self):
        payload = {
            "counters": [{"name": "c", "tags": {"topic": "train"}, "value": 6}],
            "gauges": [{"name": "g", "tags": {}, "value": 1.5}],
            "histograms": [{"name": "h", "tags": {}, "count": 3, "mean": 0.002,
                            "p50": 0.002, "p90": 0.003, "p99": 0.003,
                            "max": 0.003}],
        }
        text = render_metrics(payload)
        assert "c{topic=train}" in text
        assert "6" in text
        assert "2.00ms" in text

    def test_empty_payload(self):
        assert "no instruments" in render_metrics({})


class TestRenderTrace:
    def test_children_indent_under_parent(self):
        spans = [
            {"span_id": 1, "parent_id": None, "name": "round",
             "wall_s": 0.5, "excl_s": 0.1},
            {"span_id": 2, "parent_id": 1, "name": "aggregate",
             "wall_s": 0.4, "excl_s": 0.4},
            {"span_id": 3, "parent_id": None, "name": "client_thread",
             "wall_s": 0.9, "excl_s": 0.9},
        ]
        lines = render_trace(spans).splitlines()
        round_at = next(i for i, l in enumerate(lines) if l.strip().startswith("round"))
        assert lines[round_at + 1].startswith("    aggregate")
        assert "3 span(s)" in render_trace(spans)

    def test_empty(self):
        assert "no spans" in render_trace([])


class TestRenderProfile:
    def test_sorted_by_total_time_with_share(self):
        payload = {"ops": {
            "gelu": {"nodes": 10, "bytes": 4096, "fwd_calls": 10,
                     "fwd_seconds": 0.01, "bwd_calls": 10, "bwd_seconds": 0.01},
            "matmul": {"nodes": 20, "bytes": 8192, "fwd_calls": 0,
                       "fwd_seconds": 0.0, "bwd_calls": 20, "bwd_seconds": 0.06},
        }}
        text = render_profile(payload)
        assert text.index("matmul") < text.index("gelu")  # widest first
        assert "75.0%" in text
        assert "4.0KiB" in text

    def test_empty(self):
        assert "no ops" in render_profile({})


class TestRenderReport:
    def test_renders_all_sections(self, run_dir):
        text = render_report(run_dir)
        assert "== metrics ==" in text
        assert "transport.messages{topic=train}" in text
        assert "== trace ==" in text
        assert "aggregate" in text
        assert "== autograd profile ==" in text

    def test_partial_artifacts_noted(self, run_dir):
        (run_dir / "trace.jsonl").unlink()
        text = render_report(run_dir)
        assert "trace.jsonl not found" in text
        assert "== metrics ==" in text

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            render_report(tmp_path / "nope")

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            render_report(tmp_path)


class TestMain:
    def test_exit_zero_and_prints(self, run_dir, capsys):
        assert main(["report", str(run_dir)]) == 0
        assert "telemetry report" in capsys.readouterr().out

    def test_exit_one_on_missing(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 1
        assert "error" in capsys.readouterr().out

    def test_report_chrome_trace_format(self, run_dir, capsys):
        import json

        assert main(["report", str(run_dir), "--format=chrome-trace"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert {"round", "aggregate"} <= names

    def test_trace_export_writes_chrome_json(self, run_dir, capsys):
        import json

        assert main(["trace", "export", str(run_dir)]) == 0
        out_path = run_dir / "trace.chrome.json"
        assert "wrote" in capsys.readouterr().out
        assert json.loads(out_path.read_text())["traceEvents"]

    def test_trace_export_missing_file(self, tmp_path, capsys):
        assert main(["trace", "export", str(tmp_path)]) == 1
        assert "error" in capsys.readouterr().out

    def test_tail_finished_run(self, run_dir, capsys):
        assert main(["tail", str(run_dir)]) == 0
        assert "round 0 complete" in capsys.readouterr().out

    def test_tail_empty_dir(self, tmp_path, capsys):
        assert main(["tail", str(tmp_path), "--idle-timeout=0.1"]) == 1
        assert "error" in capsys.readouterr().out
