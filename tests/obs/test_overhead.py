"""Telemetry must be cheap: disabled is free-ish, enabled stays in budget.

The precise < 3% acceptance number is measured by
``benchmarks/test_obs_overhead.py`` under pytest-benchmark's calibrated
timer.  Here the same A/B runs interleaved with a deliberately loose bound
so tier-1 stays stable on noisy shared machines while still catching
accidental O(n) instrumentation (e.g. a span per element, an enabled-path
allocation storm).
"""

from __future__ import annotations

import time

import numpy as np

from repro.autograd import functional as F
from repro.models import build_classifier
from repro.obs import TelemetrySession, metrics, span

BATCH, SEQ, VOCAB = 16, 24, 120


def _make_step():
    model = build_classifier("lstm-tiny", vocab_size=VOCAB, seed=0)
    rng = np.random.default_rng(0)
    ids = rng.integers(1, VOCAB, size=(BATCH, SEQ))
    labels = rng.integers(0, 2, size=BATCH)

    def step():
        model.zero_grad()
        with span("step"):
            loss = F.cross_entropy(model(ids), labels)
            loss.backward()
        metrics.histogram("train.step_seconds", objective="bench").observe(0.0)

    return step


def _median_step_seconds(step, repeats=7):
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        step()
        times.append(time.perf_counter() - started)
    return sorted(times)[len(times) // 2]


def test_enabled_overhead_is_bounded(tmp_path):
    step = _make_step()
    for _ in range(3):  # warmup (allocator, BLAS thread pools)
        step()
    off = _median_step_seconds(step)
    with TelemetrySession(tmp_path):
        on = _median_step_seconds(step)
    off2 = _median_step_seconds(step)
    # Compare against the better of the two interleaved off-measurements to
    # absorb machine-load drift; 50% is far above the ~3% real overhead but
    # still catches pathological instrumentation.
    assert on <= max(min(off, off2) * 1.5, min(off, off2) + 0.01), (
        f"telemetry-on step {on * 1e3:.2f}ms vs off "
        f"{min(off, off2) * 1e3:.2f}ms")


def test_disabled_instruments_record_nothing(tmp_path):
    step = _make_step()
    step()
    assert metrics.get_registry().to_dict()["histograms"] == []
    with TelemetrySession(tmp_path) as session:
        step()
    (hist,) = [h for h in session.registry.to_dict()["histograms"]
               if h["name"] == "train.step_seconds"]
    assert hist["count"] == 1


def test_health_armed_overhead_is_bounded(tmp_path):
    """Health monitoring hooks aggregation, not the step: steps between
    monitored rounds must cost the same (loose bound; the precise < 3%
    number lives in benchmarks/test_obs_overhead.py)."""
    step = _make_step()
    for _ in range(3):
        step()
    off = _median_step_seconds(step)
    with TelemetrySession(tmp_path, health=True):
        on = _median_step_seconds(step)
    off2 = _median_step_seconds(step)
    assert on <= max(min(off, off2) * 1.5, min(off, off2) + 0.01), (
        f"telemetry+health step {on * 1e3:.2f}ms vs off "
        f"{min(off, off2) * 1e3:.2f}ms")


def test_health_round_cost_is_bounded_by_sample_size(tmp_path):
    """Per-round monitor cost must not scale with model size beyond the
    exact-norm pass: a 10x bigger model may cost more, but the sketching
    stays at the configured coordinate budget."""
    import numpy as np

    from repro.obs import HealthMonitor

    monitor = HealthMonitor(sample_size=1024)
    rng = np.random.default_rng(0)
    reference = {"w": rng.standard_normal(50_000).astype(np.float32)}
    update = {"w": reference["w"] + 0.01}
    monitor.begin_round(0, ["a", "b"], reference=reference)
    monitor.record_update("a", update)
    monitor.record_update("b", update)
    assert monitor._sketches["a"].size <= 1024
    monitor.end_round(new_global=update)
