"""The report CLI must degrade gracefully on partial / aborted runs."""

from __future__ import annotations

import json

import pytest

from repro.obs.report import load_health, load_trace, main, render_report


def write_metrics(run_dir):
    (run_dir / "metrics.json").write_text(json.dumps(
        {"schema": "repro.obs.metrics/v1", "counters": [], "gauges": [],
         "histograms": []}))


class TestPartialRuns:
    def test_metrics_only_run_reports_absent_artifacts(self, tmp_path):
        write_metrics(tmp_path)
        text = render_report(tmp_path)
        assert "absent artifacts:" in text
        assert "trace.jsonl" in text
        assert "profile.json" in text
        assert "health.jsonl" in text

    def test_truncated_trace_line_is_skipped(self, tmp_path):
        write_metrics(tmp_path)
        (tmp_path / "trace.jsonl").write_text(
            json.dumps({"schema": "repro.obs.trace/v1"}) + "\n"
            + json.dumps({"span_id": 1, "parent_id": None, "name": "round",
                          "wall_s": 0.5, "excl_s": 0.5}) + "\n"
            + '{"span_id": 2, "name": "clie')  # killed mid-write
        text = render_report(tmp_path)
        assert "1 span(s)" in text

    def test_malformed_profile_noted_not_fatal(self, tmp_path):
        write_metrics(tmp_path)
        (tmp_path / "profile.json").write_text("{not json")
        text = render_report(tmp_path)
        assert "profile.json unreadable" in text

    def test_truncated_health_tolerated(self, tmp_path):
        write_metrics(tmp_path)
        (tmp_path / "health.jsonl").write_text(
            json.dumps({"schema": "repro.obs.health/v1"}) + "\n"
            + json.dumps({"event": "alert", "detector": "nan-update",
                          "severity": "critical", "round_number": 1,
                          "client": "site-2", "message": "boom"}) + "\n"
            + '{"event": "round", "round')
        text = render_report(tmp_path)
        assert "nan-update" in text and "site-2" in text

    def test_empty_run_dir_still_errors_cleanly(self, tmp_path):
        assert main(["report", str(tmp_path)]) == 1

    def test_missing_dir_errors_cleanly(self, tmp_path):
        assert main(["report", str(tmp_path / "nope")]) == 1


class TestLoaders:
    def test_load_trace_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"schema": "x"}\ngarbage\n'
                        '{"span_id": 1, "name": "a"}\n')
        assert [s["span_id"] for s in load_trace(path)] == [1]

    def test_load_health_keeps_only_events(self, tmp_path):
        path = tmp_path / "health.jsonl"
        path.write_text('{"schema": "x"}\n'
                        '{"event": "round", "round_number": 0}\n'
                        'trunc{"ate')
        records = load_health(path)
        assert [r["event"] for r in records] == ["round"]


class TestHealthSection:
    def test_full_run_renders_health(self, tmp_path):
        write_metrics(tmp_path)
        (tmp_path / "health.jsonl").write_text("\n".join([
            json.dumps({"schema": "repro.obs.health/v1"}),
            json.dumps({"event": "round", "round_number": 0, "clients": {},
                        "quarantined": ["site-3"]}),
            json.dumps({"event": "alert", "detector": "diverging-client",
                        "severity": "warning", "round_number": 0,
                        "client": "site-3", "message": "drifting"}),
            json.dumps({"event": "summary", "rounds": 1}),
        ]) + "\n")
        text = render_report(tmp_path)
        assert "== health ==" in text
        assert "quarantined clients: site-3" in text
        assert "diverging-client" in text
