"""Dashboard tests: record folding, frame rendering, watch() over a run dir
and over a live exporter URL, plus the async commit-window tail rendering."""

import io
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "flare"))
from helpers import ToyLearner, toy_weights  # noqa: E402

from repro.flare import FLJob, SimulatorRunner  # noqa: E402
from repro.obs.dashboard import Dashboard, sparkline, watch  # noqa: E402
from repro.obs.tail import _RoundTracker  # noqa: E402


def test_sparkline():
    assert sparkline([]) == ""
    assert sparkline([1.0]) == "▁"
    line = sparkline([0, 1, 2, 3])
    assert len(line) == 4 and line[0] == "▁" and line[-1] == "█"
    assert len(sparkline(range(100), width=24)) == 24


def test_dashboard_folds_sync_round_spans():
    board = Dashboard(target="demo")
    board.feed_trace_record({"schema": "repro.obs.trace/v1", "trace_id": "t1"})
    board.feed_trace_record({"span_id": "a", "name": "client_task",
                             "t_end": 1.0, "wall_s": 0.5,
                             "attrs": {"round": 0, "client": "site-1"}})
    board.feed_trace_record({"span_id": "b", "name": "round", "t_end": 1.0,
                             "wall_s": 0.9,
                             "attrs": {"round": 0, "quorum_met": True,
                                       "n_clients": 1}})
    frame = board.render()
    assert "trace t1" in frame
    assert "rounds: 1 complete" in frame
    assert "site-1" in frame


def test_dashboard_renders_async_commit_progress():
    board = Dashboard(target="demo")
    board.feed_trace_record({"span_id": "c", "name": "round", "t_end": 2.0,
                             "wall_s": 1.0,
                             "attrs": {"round": 0, "mode": "async",
                                       "version": 1, "accepted": 4,
                                       "buffer_size": 4, "staleness_max": 2,
                                       "quorum_met": True}})
    frame = board.render()
    assert "commits: 1 (global v1)" in frame
    assert "last window 4/4 update(s)" in frame
    assert "staleness max 2" in frame


def test_dashboard_health_and_quarantine():
    board = Dashboard(target="demo")
    board.feed_health_record({"event": "alert", "severity": "critical",
                              "detector": "diverging_client",
                              "client": "site-2", "round_number": 3,
                              "message": "cosine to peers below threshold"})
    board.feed_health_record({"event": "round", "round": 3,
                              "participants": ["site-1", "site-2"],
                              "quarantined": ["site-2"]})
    frame = board.render()
    assert "QUARANTINED" in frame
    assert "diverging_client" in frame


def test_dashboard_scrape_and_healthz_feed():
    board = Dashboard(target="http://x")
    board.feed_scrape([("sys_rss_bytes", {"process": "server"}, 1024.0),
                       ("sys_rss_bytes", {"process": "site-1"}, 2048.0),
                       ("sys_cpu_percent", {"process": "server"}, 42.0),
                       ("federation_rounds", {}, 2.0)])
    board.feed_healthz({"status": "critical", "alert_counts": {"critical": 1},
                        "quarantined": ["site-1"],
                        "alerts": [{"severity": "critical", "client": "site-1",
                                    "detector": "d", "round_number": 0,
                                    "message": "m"}]})
    frame = board.render()
    assert "rounds: 2 complete" in frame
    assert "health: critical" in frame
    assert "rss server" in frame and "1.0KiB" in frame
    assert "cpu server" in frame and "42%" in frame
    assert "QUARANTINED" in frame


def test_watch_run_dir_renders_to_footer(tmp_path):
    job = FLJob(name="watch", initial_weights=toy_weights(0.0),
                learner_factory=ToyLearner, num_rounds=2)
    SimulatorRunner(job, n_clients=2, seed=0, run_dir=tmp_path,
                    telemetry=True, health=True).run()
    out = io.StringIO()
    frames = watch(str(tmp_path), refresh=0.05, stream=out, max_frames=40,
                   idle_timeout=5.0, clear=False)
    assert frames >= 1
    text = out.getvalue()
    assert "rounds: 2 complete" in text
    assert "run finished (trace footer seen)" in text
    assert "site-1" in text and "site-2" in text


def test_watch_url_mode_against_live_exporter(tmp_path):
    class SlowLearner(ToyLearner):
        def train(self, dxo, fl_ctx):
            time.sleep(0.3)
            return super().train(dxo, fl_ctx)

    job = FLJob(name="watch-url", initial_weights=toy_weights(0.0),
                learner_factory=SlowLearner, num_rounds=2)
    runner = SimulatorRunner(job, n_clients=2, seed=0, run_dir=tmp_path,
                             metrics_port=0, sysmon=0.1)
    out = io.StringIO()
    frames = {}

    def watcher():
        for _ in range(100):
            if runner.metrics_exporter is not None:
                frames["n"] = watch(runner.metrics_exporter.url,
                                    refresh=0.1, stream=out, max_frames=8,
                                    idle_timeout=5.0, clear=False)
                return
            time.sleep(0.05)

    thread = threading.Thread(target=watcher, daemon=True)
    thread.start()
    runner.run()
    thread.join(timeout=30)
    assert frames.get("n", 0) >= 1
    assert "rss server" in out.getvalue()


# ---------------------------------------------------------------------------
# tail renders async commit windows
# ---------------------------------------------------------------------------
def test_tail_renders_async_commit_window():
    tracker = _RoundTracker()
    line = tracker.feed({"span_id": "x", "name": "round", "t_end": 2.0,
                         "wall_s": 1.5,
                         "attrs": {"round": 3, "mode": "async", "version": 4,
                                   "accepted": 8, "buffer_size": 8,
                                   "staleness_max": 1, "quorum_met": True}})
    assert line == ("commit window 3 closed in 1.500s "
                    "(buffer 8/8 update(s), global v4, staleness max 1)")


def test_tail_renders_async_under_quorum():
    tracker = _RoundTracker()
    line = tracker.feed({"span_id": "y", "name": "round", "t_end": 2.0,
                         "wall_s": 0.5,
                         "attrs": {"round": 0, "mode": "async", "version": 0,
                                   "accepted": 1, "buffer_size": 4,
                                   "quorum_met": False}})
    assert "under quorum" in line
    assert "buffer 1/4 update(s)" in line


def test_tail_sync_round_rendering_unchanged():
    tracker = _RoundTracker()
    line = tracker.feed({"span_id": "z", "name": "round", "t_end": 1.0,
                         "wall_s": 0.2, "attrs": {"round": 1}})
    assert line == "round 1 complete in 200.0ms (0 task(s) streamed so far)"
