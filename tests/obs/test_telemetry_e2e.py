"""End-to-end telemetry: simulator runs and real training under a session."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.flare import FaultPlan, FLJob, SimulatorRunner
from repro.models import build_classifier
from repro.obs import TelemetrySession
from repro.obs.report import render_report
from repro.training import TrainConfig, train_classifier

from ..flare.helpers import ToyLearner, toy_weights


def make_job(num_rounds=2, **kw):
    return FLJob(name="toy", initial_weights=toy_weights(0.0),
                 learner_factory=lambda name: ToyLearner(name, delta=1.0),
                 num_rounds=num_rounds,
                 evaluator=lambda w: {"valid_acc": float(np.mean(w["layer.weight"]))},
                 **kw)


def load_trace_names(path) -> dict[str, int]:
    names: dict[str, int] = {}
    for line in path.read_text().splitlines():
        record = json.loads(line)
        if "span_id" not in record:
            continue  # header / process marker / end footer
        names[record["name"]] = names.get(record["name"], 0) + 1
    return names


class TestSimulatorTelemetry:
    def test_artifacts_written_and_linked(self, tmp_path):
        result = SimulatorRunner(make_job(), n_clients=3, seed=0,
                                 run_dir=tmp_path, telemetry=True).run()
        assert set(result.stats.telemetry) == {"metrics", "trace", "profile"}
        for path in result.stats.telemetry.values():
            assert Path(path).exists()

    def test_metrics_cover_transport_and_federation(self, tmp_path):
        result = SimulatorRunner(make_job(), n_clients=3, seed=0,
                                 run_dir=tmp_path, telemetry=True).run()
        payload = json.loads((tmp_path / "metrics.json").read_text())
        counters = {c["name"] for c in payload["counters"]}
        assert {"federation.rounds", "transport.messages_delivered",
                "transport.messages"} <= counters
        histograms = {h["name"] for h in payload["histograms"]}
        assert {"federation.round_seconds", "federation.aggregation_seconds",
                "transport.latency_seconds"} <= histograms
        rounds = next(c for c in payload["counters"]
                      if c["name"] == "federation.rounds")
        assert rounds["value"] == 2

    def test_trace_has_round_and_client_spans(self, tmp_path):
        SimulatorRunner(make_job(), n_clients=3, seed=0,
                        run_dir=tmp_path, telemetry=True).run()
        names = load_trace_names(tmp_path / "trace.jsonl")
        assert names["round"] == 2
        assert names["client_task"] == 6  # 3 clients x 2 rounds
        assert names["client_thread"] == 3
        assert names["aggregate"] == 2

    def test_stats_json_roundtrips_pointers(self, tmp_path):
        from repro.flare.stats import RunStats

        result = SimulatorRunner(make_job(), n_clients=2, seed=0,
                                 run_dir=tmp_path, telemetry=True).run()
        saved = result.stats.save_json(tmp_path / "stats.json")
        restored = RunStats.from_dict(json.loads(saved.read_text()))
        assert restored.telemetry == result.stats.telemetry
        assert restored.duplicates_dropped == result.stats.duplicates_dropped

    def test_telemetry_off_writes_nothing(self, tmp_path):
        result = SimulatorRunner(make_job(), n_clients=2, seed=0,
                                 run_dir=tmp_path).run()
        assert result.stats.telemetry == {}
        assert not (tmp_path / "metrics.json").exists()
        assert not (tmp_path / "trace.jsonl").exists()

    def test_fault_injections_exported(self, tmp_path):
        plan = FaultPlan(seed=7, duplicate_prob=0.5)
        result = SimulatorRunner(make_job(), n_clients=3, seed=0,
                                 run_dir=tmp_path, fault_plan=plan,
                                 telemetry=True).run()
        payload = json.loads((tmp_path / "metrics.json").read_text())
        faults = [c for c in payload["counters"] if c["name"] == "transport.faults"]
        assert any(c["tags"] == {"kind": "duplicate"} and c["value"] > 0
                   for c in faults)
        dedup = next(c for c in payload["counters"]
                     if c["name"] == "transport.duplicates_dropped")
        assert dedup["value"] == result.stats.duplicates_dropped > 0

    def test_report_renders_run(self, tmp_path):
        SimulatorRunner(make_job(), n_clients=2, seed=0,
                        run_dir=tmp_path, telemetry=True).run()
        text = render_report(tmp_path)
        assert "federation.rounds" in text
        assert "client_task" in text


class TestTrainingTelemetry:
    @pytest.fixture(scope="class")
    def trained_session(self, tmp_path_factory, tiny_split, vocab_size):
        run_dir = tmp_path_factory.mktemp("train-telemetry")
        train, _ = tiny_split
        model = build_classifier("lstm-tiny", vocab_size=vocab_size, seed=0)
        with TelemetrySession(run_dir) as session:
            train_classifier(model, train,
                             TrainConfig(epochs=1, batch_size=32, lr=1e-2))
        return run_dir, session

    def test_local_train_and_step_spans(self, trained_session):
        run_dir, session = trained_session
        names = load_trace_names(run_dir / "trace.jsonl")
        assert names["local_train"] == 1
        assert names["step"] >= 1

    def test_step_histogram_and_throughput(self, trained_session):
        _, session = trained_session
        hist = session.registry.histogram("train.step_seconds",
                                          objective="classifier")
        assert hist.count >= 1
        assert session.registry.counter("train.tokens",
                                        objective="classifier").value > 0
        assert session.registry.gauge("train.tokens_per_sec",
                                      objective="classifier").value > 0

    def test_profiler_saw_fused_ops(self, trained_session):
        run_dir, _ = trained_session
        payload = json.loads((run_dir / "profile.json").read_text())
        # fused forwards are timed under the functional name; the graph nodes
        # they register carry per-output names (lstm_step -> _h/_c)
        assert payload["ops"]["lstm_step"]["fwd_calls"] > 0
        assert payload["ops"]["lstm_step_h"]["nodes"] > 0
        assert payload["ops"]["lstm_step_h"]["bwd_calls"] > 0
        assert payload["ops"]["cross_entropy"]["fwd_calls"] >= 1
        assert payload["ops"]["cross_entropy"]["bwd_seconds"] >= 0.0
