"""TelemetrySession: arming, restoring, artifact writing, partial configs."""

from __future__ import annotations

import json

from repro.obs import TelemetrySession, metrics, trace
from repro.obs.session import METRICS_FILE, PROFILE_FILE, TRACE_FILE


class TestArming:
    def test_installs_and_restores_instruments(self, tmp_path):
        before_registry = metrics.get_registry()
        before_tracer = trace.get_tracer()
        with TelemetrySession(tmp_path) as session:
            assert metrics.get_registry() is session.registry
            assert trace.get_tracer() is session.tracer
            assert metrics.get_registry().enabled
        assert metrics.get_registry() is before_registry
        assert trace.get_tracer() is before_tracer

    def test_measurements_land_in_session_registry(self, tmp_path):
        with TelemetrySession(tmp_path) as session:
            metrics.counter("c").inc(3)
            with trace.span("s"):
                pass
        assert session.registry.counter("c").value == 3
        assert [s.name for s in session.tracer.spans] == ["s"]

    def test_start_idempotent(self, tmp_path):
        session = TelemetrySession(tmp_path)
        assert session.start() is session.start()
        session.stop()
        assert session.stop() == {}  # second stop is a no-op


class TestArtifacts:
    def test_writes_all_three(self, tmp_path):
        with TelemetrySession(tmp_path):
            metrics.counter("c").inc()
        for name in (METRICS_FILE, TRACE_FILE, PROFILE_FILE):
            assert (tmp_path / name).exists()
        payload = json.loads((tmp_path / METRICS_FILE).read_text())
        assert payload["counters"][0]["name"] == "c"

    def test_artifact_paths_deterministic_pre_write(self, tmp_path):
        session = TelemetrySession(tmp_path)
        expected = session.artifact_paths()
        session.start()
        assert session.stop() == expected
        assert set(expected) == {"metrics", "trace", "profile"}

    def test_disabled_subsystems_skipped(self, tmp_path):
        with TelemetrySession(tmp_path, trace=False, profile=False) as session:
            metrics.counter("c").inc()
        assert set(session.artifact_paths()) == {"metrics"}
        assert (tmp_path / METRICS_FILE).exists()
        assert not (tmp_path / TRACE_FILE).exists()
        assert not (tmp_path / PROFILE_FILE).exists()
