"""Live trace follower: incremental reads, footer stop, progress lines."""

from __future__ import annotations

import io
import json
import threading

from repro.obs.tail import _RoundTracker, iter_trace_records, tail_run


def write_lines(path, records, mode="a"):
    with path.open(mode) as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")


HEADER = {"schema": "repro.obs.trace/v2", "trace_id": "t" * 32,
          "process": "server"}


def span_record(name, span_id="server-000001", process="server", t_end=0.2,
                **attrs):
    return {"span_id": span_id, "parent_id": None, "name": name,
            "process": process, "thread": "MainThread", "t_start": 0.1,
            "t_end": t_end, "wall_s": None if t_end is None else t_end - 0.1,
            "excl_s": 0.0, "attrs": attrs}


class TestIterTraceRecords:
    def test_stops_at_end_footer(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_lines(path, [HEADER, span_record("round", round=0),
                           {"event": "end", "trace_id": "t" * 32}], mode="w")
        records = list(iter_trace_records(path, poll=0.01))
        assert [r.get("event", r.get("name", "header")) for r in records] \
            == ["header", "round", "end"]

    def test_idle_timeout_without_footer(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_lines(path, [HEADER], mode="w")
        records = list(iter_trace_records(path, poll=0.01, idle_timeout=0.1))
        assert len(records) == 1  # header only; returned instead of hanging

    def test_missing_file_times_out_cleanly(self, tmp_path):
        records = list(iter_trace_records(tmp_path / "absent.jsonl",
                                          poll=0.01, idle_timeout=0.1))
        assert records == []

    def test_partial_line_buffered_until_complete(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_lines(path, [HEADER], mode="w")
        full_line = json.dumps(span_record("round", round=0)) + "\n"
        with path.open("a") as fh:
            fh.write(full_line[:20])  # writer mid-append
            fh.flush()

            collected = []

            def consume():
                collected.extend(iter_trace_records(path, poll=0.01))

            reader = threading.Thread(target=consume)
            reader.start()
            fh.write(full_line[20:])
            fh.flush()
            fh.write(json.dumps({"event": "end"}) + "\n")
            fh.flush()
            reader.join(timeout=5.0)
        assert not reader.is_alive()
        assert [r.get("name") for r in collected] == [None, "round", None]

    def test_live_appends_are_picked_up(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_lines(path, [HEADER], mode="w")
        collected = []

        def consume():
            collected.extend(iter_trace_records(path, poll=0.01))

        reader = threading.Thread(target=consume)
        reader.start()
        write_lines(path, [span_record("round", round=0)])
        write_lines(path, [{"event": "end"}])
        reader.join(timeout=5.0)
        assert not reader.is_alive()
        assert len(collected) == 3


class TestProgressRendering:
    def test_round_digest_lines(self):
        tracker = _RoundTracker()
        lines = [tracker.feed(r) for r in (
            HEADER,
            {"event": "process", "process": "site-1", "client": "site-1",
             "clock_offset": 1.5e-6},
            span_record("client_task", span_id="site-1-000001",
                        process="site-1", round=0, client="site-1"),
            span_record("round", round=0),
            {"event": "end"},
        )]
        assert "trace " + "t" * 32 in lines[0]
        assert "site-1 joined" in lines[1] and "+1.5us" in lines[1]
        assert "round 0: client site-1 done" in lines[2]
        assert "round 0 complete" in lines[3]
        assert "1 task(s) streamed" in lines[3]
        assert lines[4] == "run ended"

    def test_aborted_span_flagged(self):
        tracker = _RoundTracker()
        line = tracker.feed(span_record("client_task", process="site-2",
                                        t_end=None, round=1))
        assert "aborted" in line and "site-2" in line

    def test_uninteresting_spans_stay_quiet(self):
        tracker = _RoundTracker()
        assert tracker.feed(span_record("codec.encode")) is None


class TestTailRun:
    def test_tail_run_prints_and_counts(self, tmp_path):
        write_lines(tmp_path / "trace.jsonl",
                    [HEADER, span_record("round", round=0),
                     {"event": "end"}], mode="w")
        out = io.StringIO()
        seen = tail_run(tmp_path, stream=out, poll=0.01)
        assert seen == 3
        assert "round 0 complete" in out.getvalue()

    def test_tail_run_empty_dir_times_out(self, tmp_path):
        assert tail_run(tmp_path, stream=io.StringIO(), poll=0.01,
                        idle_timeout=0.1) == 0
