"""Live trace streaming: the shared writer and the session's flusher."""

from __future__ import annotations

import json
import time

from repro.obs import TelemetrySession, TraceStreamWriter, span
from repro.obs.report import load_trace, load_trace_events


def read_lines(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestTraceStreamWriter:
    def test_header_written_lazily(self, tmp_path):
        writer = TraceStreamWriter(tmp_path / "t.jsonl",
                                   {"schema": "s", "trace_id": "t"})
        assert not (tmp_path / "t.jsonl").exists()
        writer.append([{"span_id": "p-1", "name": "a"}])
        lines = read_lines(tmp_path / "t.jsonl")
        assert lines[0] == {"schema": "s", "trace_id": "t"}
        assert lines[1]["span_id"] == "p-1"

    def test_every_append_is_durable_whole_lines(self, tmp_path):
        writer = TraceStreamWriter(tmp_path / "t.jsonl", {"schema": "s"})
        writer.append([{"span_id": "p-1"}])
        writer.append([{"span_id": "p-2"}, {"span_id": "p-3"}])
        # no close: a concurrent reader must still see complete JSON lines
        assert [r.get("span_id") for r in read_lines(tmp_path / "t.jsonl")] \
            == [None, "p-1", "p-2", "p-3"]

    def test_footer_counts_records(self, tmp_path):
        writer = TraceStreamWriter(tmp_path / "t.jsonl", {"schema": "s"})
        writer.append([{"span_id": "p-1"}, {"span_id": "p-2"}])
        writer.close({"event": "end"})
        footer = read_lines(tmp_path / "t.jsonl")[-1]
        assert footer == {"event": "end", "n_records": 2}

    def test_append_after_close_is_dropped(self, tmp_path):
        writer = TraceStreamWriter(tmp_path / "t.jsonl", {"schema": "s"})
        writer.close({"event": "end"})
        writer.append([{"span_id": "late"}])
        writer.close({"event": "end"})  # idempotent
        records = read_lines(tmp_path / "t.jsonl")
        assert len(records) == 2  # header + one footer
        assert all(r.get("span_id") != "late" for r in records)

    def test_empty_append_writes_nothing(self, tmp_path):
        writer = TraceStreamWriter(tmp_path / "t.jsonl", {"schema": "s"})
        writer.append([])
        assert not (tmp_path / "t.jsonl").exists()


class TestStreamingSession:
    def test_spans_appear_before_stop(self, tmp_path):
        session = TelemetrySession(tmp_path, metrics=False, profile=False,
                                   flush_interval=0.05,
                                   flush_threshold=0.0).start()
        try:
            with span("round", round=0):
                pass
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if (tmp_path / "trace.jsonl").exists() and \
                        load_trace(tmp_path / "trace.jsonl"):
                    break
                time.sleep(0.02)
            live = load_trace(tmp_path / "trace.jsonl")
            assert [s["name"] for s in live] == ["round"]
            events = load_trace_events(tmp_path / "trace.jsonl")
            assert not any(e.get("event") == "end" for e in events)
        finally:
            session.stop()
        events = load_trace_events(tmp_path / "trace.jsonl")
        assert events[-1]["event"] == "end"
        assert events[-1]["trace_id"] == session.tracer.trace_id

    def test_external_spans_and_process_markers_merge(self, tmp_path):
        session = TelemetrySession(tmp_path, metrics=False, profile=False,
                                   flush_interval=0.05).start()
        try:
            session.append_process({"process": "site-1", "client": "site-1",
                                    "clock_offset": 0.001})
            session.append_spans([{"span_id": "site-1-000001",
                                   "name": "client_task", "process": "site-1",
                                   "t_start": 0.0, "t_end": 0.1}])
        finally:
            session.stop()
        events = load_trace_events(tmp_path / "trace.jsonl")
        assert any(e.get("event") == "process"
                   and e.get("process") == "site-1" for e in events)
        assert any(e.get("span_id") == "site-1-000001" for e in events)

    def test_no_streaming_still_writes_full_trace_at_stop(self, tmp_path):
        session = TelemetrySession(tmp_path, metrics=False, profile=False,
                                   flush_interval=None).start()
        try:
            with span("round", round=0):
                time.sleep(0.01)
            assert not (tmp_path / "trace.jsonl").exists()
        finally:
            session.stop()
        spans = load_trace(tmp_path / "trace.jsonl")
        assert [s["name"] for s in spans] == ["round"]
        assert load_trace_events(tmp_path / "trace.jsonl")[-1]["event"] == "end"

    def test_wide_span_kicks_prompt_flush(self, tmp_path):
        session = TelemetrySession(tmp_path, metrics=False, profile=False,
                                   flush_interval=30.0,
                                   flush_threshold=0.01).start()
        try:
            with span("slow"):
                time.sleep(0.02)
            deadline = time.monotonic() + 5.0
            flushed = []
            while time.monotonic() < deadline and not flushed:
                if (tmp_path / "trace.jsonl").exists():
                    flushed = load_trace(tmp_path / "trace.jsonl")
                time.sleep(0.02)
            # the 30s interval cannot have elapsed: the threshold hook did it
            assert [s["name"] for s in flushed] == ["slow"]
        finally:
            session.stop()
