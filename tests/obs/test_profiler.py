"""OpProfiler: node counting, fwd/bwd timing, install/uninstall hygiene."""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, tensor
from repro.obs.profiler import OpProfiler, get_profiler

_tensor_mod = sys.modules[Tensor.__module__]


@pytest.fixture
def profiler():
    profiler = OpProfiler()
    profiler.install()
    yield profiler
    profiler.uninstall()


def _train_step():
    weight = tensor(np.random.default_rng(0).normal(size=(4, 3)),
                    requires_grad=True)
    x = tensor(np.ones((2, 4), dtype=np.float32))
    out = F.gelu(x @ weight)
    out.sum().backward()
    return weight


class TestNodeHook:
    def test_counts_nodes_and_bytes(self, profiler):
        _train_step()
        ops = profiler.ops
        assert ops["matmul"].nodes == 1
        assert ops["gelu"].nodes == 1
        assert ops["matmul"].bytes == 2 * 3 * 8  # (2,3) float64 output

    def test_backward_timed_per_op(self, profiler):
        _train_step()
        ops = profiler.ops
        assert ops["gelu"].bwd_calls == 1
        assert ops["gelu"].bwd_seconds >= 0.0
        assert ops["matmul"].bwd_calls == 1

    def test_gradients_unchanged_by_profiling(self):
        expected = _train_step().grad.copy()
        with OpProfiler():
            observed = _train_step().grad
        np.testing.assert_allclose(observed, expected)


class TestForwardWrappers:
    def test_fused_forward_timed(self, profiler):
        _train_step()
        record = profiler.ops["gelu"]
        assert record.fwd_calls == 1
        assert record.fwd_seconds >= 0.0

    def test_total_seconds(self, profiler):
        _train_step()
        assert profiler.total_seconds() >= 0.0


class TestInstallUninstall:
    def test_uninstall_restores_everything(self):
        original_gelu = F.gelu
        profiler = OpProfiler()
        profiler.install()
        assert _tensor_mod._PROFILE_HOOK is profiler
        assert F.gelu is not original_gelu
        profiler.uninstall()
        assert _tensor_mod._PROFILE_HOOK is None
        assert F.gelu is original_gelu

    def test_second_install_rejected(self, profiler):
        with pytest.raises(RuntimeError):
            OpProfiler().install()

    def test_install_idempotent_per_instance(self, profiler):
        assert profiler.install() is profiler
        profiler.uninstall()
        profiler.uninstall()  # double uninstall is a no-op

    def test_get_profiler(self, profiler):
        assert get_profiler() is profiler

    def test_get_profiler_none_when_off(self):
        assert get_profiler() is None

    def test_context_manager(self):
        with OpProfiler() as profiler:
            _train_step()
        assert _tensor_mod._PROFILE_HOOK is None
        assert profiler.ops["matmul"].nodes == 1


class TestExport:
    def test_schema_and_save(self, profiler, tmp_path):
        _train_step()
        payload = profiler.to_dict()
        assert payload["schema"] == "repro.obs.profile/v1"
        record = payload["ops"]["gelu"]
        assert set(record) == {"nodes", "bytes", "fwd_calls", "fwd_seconds",
                               "bwd_calls", "bwd_seconds"}
        path = profiler.save_json(tmp_path / "profile.json")
        assert path.exists()
