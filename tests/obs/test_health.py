"""HealthMonitor + detectors: diagnostics, alerts, quarantine, artifacts."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.health import (
    Alert,
    DivergingClientDetector,
    HealthMonitor,
    NonFiniteUpdateDetector,
    RoundHealth,
    StalledConvergenceDetector,
    StragglerDetector,
    WireBlowupDetector,
    default_detectors,
)


def weights(value: float = 0.0) -> dict[str, np.ndarray]:
    return {"w": np.full((4, 4), value, dtype=np.float32),
            "b": np.full(4, value, dtype=np.float32)}


def run_round(monitor: HealthMonitor, round_number: int,
              updates: dict[str, float], *, base: float = 0.0,
              new_global: float | None = None, seconds: float = 0.1,
              bytes_on_wire: int = 1000, metrics: dict | None = None,
              latencies: dict[str, float] | None = None):
    """One synthetic round: every client adds ``updates[name]`` to the base."""
    reference = weights(base)
    monitor.begin_round(round_number, sorted(updates), reference=reference)
    for name, delta in updates.items():
        monitor.record_update(
            name, weights(base + delta),
            latency_seconds=(latencies or {}).get(name, 0.01))
    mean = float(np.mean(list(updates.values()))) \
        if new_global is None else new_global
    return monitor.end_round(seconds=seconds, bytes_on_wire=bytes_on_wire,
                             global_metrics=metrics or {},
                             new_global=weights(base + mean))


class TestAlert:
    def test_round_trips_through_dict(self):
        alert = Alert(detector="d", severity="warning", round_number=3,
                      message="m", client="site-1", value=1.5)
        assert Alert.from_dict(alert.to_dict()) == alert

    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            Alert(detector="d", severity="fatal", round_number=0, message="m")


class TestDiagnostics:
    def test_update_norm_is_exact(self):
        monitor = HealthMonitor()
        monitor.begin_round(0, ["a"], reference=weights(0.0))
        health = monitor.record_update("a", weights(2.0))
        # 20 coordinates all moved by 2.0
        assert health.update_norm == pytest.approx(math.sqrt(20 * 4.0))
        assert health.update_max_abs == pytest.approx(2.0)

    def test_weight_diff_payload_is_the_update(self):
        monitor = HealthMonitor()
        monitor.begin_round(0, ["a"], reference=weights(5.0))
        health = monitor.record_update("a", weights(3.0),
                                       data_kind="WEIGHT_DIFF")
        assert health.update_norm == pytest.approx(math.sqrt(20 * 9.0))

    def test_cosine_sign_tracks_direction(self):
        monitor = HealthMonitor()
        _, _ = run_round(monitor, 0, {"good": 1.0, "also": 1.0, "bad": -1.0})
        clients = monitor.history[0].clients
        assert clients["good"].cosine_to_peers == pytest.approx(1.0)
        assert clients["bad"].cosine_to_peers == pytest.approx(-1.0)

    def test_peer_consensus_resists_dominant_outlier(self):
        # One huge bad update drags the aggregate direction with it, so the
        # aggregate cosine would blame the honest clients; the coordinate-
        # median consensus must still point with the honest majority.
        monitor = HealthMonitor()
        run_round(monitor, 0, {"h1": 1.0, "h2": 1.0, "h3": 1.0, "bad": -500.0})
        clients = monitor.history[0].clients
        assert clients["h1"].cosine_to_peers == pytest.approx(1.0)
        assert clients["bad"].cosine_to_peers == pytest.approx(-1.0)
        # and the aggregate-direction diagnostic indeed has the inversion
        assert clients["h1"].cosine_to_global < 0

    def test_staleness_counts_missed_rounds(self):
        monitor = HealthMonitor()
        run_round(monitor, 0, {"a": 1.0, "b": 1.0})
        run_round(monitor, 1, {"a": 1.0})
        third, _ = run_round(monitor, 2, {"a": 1.0, "b": 1.0})
        assert third.clients["b"].staleness == 2
        assert third.clients["a"].staleness == 1

    def test_sketch_is_deterministic_and_bounded(self):
        monitor = HealthMonitor(sample_size=8)
        big = {"w": np.arange(1000, dtype=np.float64)}
        first = monitor._sample_update(big)
        second = monitor._sample_update(big)
        assert first.size <= 8
        np.testing.assert_array_equal(first, second)


class TestDetectors:
    def test_nan_update_is_critical(self):
        detector = NonFiniteUpdateDetector()
        current = RoundHealth(round_number=0)
        run_round_monitor = HealthMonitor(detectors=[detector])
        run_round_monitor.begin_round(0, ["a"], reference=weights(0.0))
        bad = weights(0.0)
        bad["w"][0, 0] = np.nan
        run_round_monitor.record_update("a", bad)
        _, alerts = run_round_monitor.end_round()
        assert [a.severity for a in alerts] == ["critical"]
        assert alerts[0].detector == "nan-update"
        assert alerts[0].client == "a"

    def test_exploding_norm_is_critical(self):
        monitor = HealthMonitor(detectors=[NonFiniteUpdateDetector(max_norm=10.0)])
        _, alerts = run_round(monitor, 0, {"a": 100.0})
        assert alerts and alerts[0].detector == "nan-update"

    def test_diverging_cosine_escalates_to_critical(self):
        monitor = HealthMonitor(detectors=[DivergingClientDetector(persist=2)])
        _, first = run_round(monitor, 0, {"g1": 1.0, "g2": 1.0, "bad": -1.0})
        _, second = run_round(monitor, 1, {"g1": 1.0, "g2": 1.0, "bad": -1.0})
        assert [a.client for a in first] == ["bad"]
        assert first[0].severity == "warning"
        assert second[0].severity == "critical"
        assert second[0].round_number == 1

    def test_honest_clients_not_flagged(self):
        monitor = HealthMonitor(detectors=[DivergingClientDetector()])
        for r in range(3):
            _, alerts = run_round(
                monitor, r, {"g1": 1.0, "g2": 1.0, "g3": 1.0, "bad": -500.0})
            assert {a.client for a in alerts} == {"bad"}

    def test_straggler_uses_latency(self):
        monitor = HealthMonitor(detectors=[StragglerDetector(ratio=3.0)])
        _, alerts = run_round(
            monitor, 0, {"a": 1.0, "b": 1.0, "c": 1.0, "slow": 1.0},
            latencies={"a": 0.1, "b": 0.1, "c": 0.1, "slow": 1.0})
        assert [a.client for a in alerts] == ["slow"]
        assert "straggling" in alerts[0].message

    def test_stalled_convergence_fires_after_patience(self):
        monitor = HealthMonitor(
            detectors=[StalledConvergenceDetector(patience=2)])
        alerts_seen = []
        accs = [0.5, 0.6, 0.6, 0.6, 0.6]
        for r, acc in enumerate(accs):
            _, alerts = run_round(monitor, r, {"a": 1.0},
                                  metrics={"valid_acc": acc})
            alerts_seen.append(alerts)
        assert not alerts_seen[1] and not alerts_seen[2]
        assert alerts_seen[3] and alerts_seen[3][0].detector == "stalled-convergence"
        # re-alerts only every `patience` rounds while still stalled
        assert not alerts_seen[4]

    def test_wire_blowup(self):
        monitor = HealthMonitor(detectors=[WireBlowupDetector(min_history=2)])
        for r in range(3):
            _, alerts = run_round(monitor, r, {"a": 1.0}, bytes_on_wire=1000)
            assert not alerts
        _, alerts = run_round(monitor, 3, {"a": 1.0}, bytes_on_wire=10_000)
        assert alerts and alerts[0].detector == "wire-blowup"

    def test_broken_detector_degrades_to_info_alert(self):
        class Exploding(DivergingClientDetector):
            name = "boom"

            def observe(self, current, history):
                raise RuntimeError("bug in rule")

        monitor = HealthMonitor(detectors=[Exploding()])
        _, alerts = run_round(monitor, 0, {"a": 1.0})
        assert [a.severity for a in alerts] == ["info"]
        assert "boom" in alerts[0].message or alerts[0].detector == "boom"

    def test_default_detector_names_unique(self):
        names = [d.name for d in default_detectors()]
        assert len(names) == len(set(names)) == 5


class TestQuarantine:
    def make(self, tmp_path):
        return HealthMonitor(run_dir=tmp_path,
                             detectors=[DivergingClientDetector(persist=2)],
                             quarantine_after=2, quarantine_rounds=2)

    def test_lifecycle(self, tmp_path):
        monitor = self.make(tmp_path)
        run_round(monitor, 0, {"g1": 1.0, "g2": 1.0, "bad": -1.0})
        _, alerts = run_round(monitor, 1, {"g1": 1.0, "g2": 1.0, "bad": -1.0})
        assert any(a.detector == "quarantine" and a.severity == "critical"
                   for a in alerts)
        assert monitor.is_quarantined("bad", 2)
        assert monitor.is_quarantined("bad", 3)
        assert not monitor.is_quarantined("bad", 4)
        # behaves during quarantine -> clean re-admission notice
        run_round(monitor, 2, {"g1": 1.0, "g2": 1.0, "bad": 1.0})
        _, alerts = run_round(monitor, 3, {"g1": 1.0, "g2": 1.0, "bad": 1.0})
        readmissions = [a for a in alerts if a.detector == "quarantine"]
        assert [a.severity for a in readmissions] == ["info"]
        assert monitor.quarantined_clients == []

    def test_still_diverging_at_boundary_renews_sentence(self, tmp_path):
        monitor = self.make(tmp_path)
        for r in range(4):
            _, alerts = run_round(monitor, r,
                                  {"g1": 1.0, "g2": 1.0, "bad": -1.0})
        # no contradictory re-admission alongside the renewed quarantine
        quarantine_alerts = [a for a in alerts if a.detector == "quarantine"]
        assert all(a.severity == "critical" for a in quarantine_alerts)
        assert monitor.is_quarantined("bad", 4)

    def test_disabled_by_default(self, tmp_path):
        monitor = HealthMonitor(
            run_dir=tmp_path, detectors=[DivergingClientDetector(persist=1)])
        for r in range(5):
            run_round(monitor, r, {"g1": 1.0, "g2": 1.0, "bad": -1.0})
        assert monitor.quarantined_clients == []


class TestArtifacts:
    def test_health_jsonl_schema(self, tmp_path):
        monitor = HealthMonitor(run_dir=tmp_path)
        run_round(monitor, 0, {"a": 1.0, "b": -1.0})
        monitor.finalize()
        lines = [json.loads(line) for line in
                 (tmp_path / "health.jsonl").read_text().splitlines()]
        assert lines[0]["schema"] == "repro.obs.health/v1"
        events = [line["event"] for line in lines[1:]]
        assert events[0] == "round"
        assert events[-1] == "summary"
        round_event = lines[1]
        assert set(round_event["clients"]) == {"a", "b"}
        assert round_event["clients"]["a"]["update_norm"] > 0

    def test_nan_serialized_as_null(self, tmp_path):
        monitor = HealthMonitor(run_dir=tmp_path, detectors=[])
        monitor.begin_round(0, ["a"], reference=weights(0.0))
        monitor.record_update("a", weights(1.0))
        monitor.end_round(new_global=None)  # no aggregation -> NaN cosine
        payload = (tmp_path / "health.jsonl").read_text()
        assert "NaN" not in payload
        round_event = json.loads(payload.splitlines()[1])
        assert round_event["clients"]["a"]["cosine_to_global"] is None

    def test_finalize_without_rounds_still_writes_header(self, tmp_path):
        monitor = HealthMonitor(run_dir=tmp_path)
        monitor.finalize()
        lines = (tmp_path / "health.jsonl").read_text().splitlines()
        assert json.loads(lines[0])["schema"] == "repro.obs.health/v1"
        assert json.loads(lines[1])["event"] == "summary"

    def test_metrics_feed(self, tmp_path):
        registry = obs_metrics.MetricsRegistry()
        previous = obs_metrics.set_registry(registry)
        try:
            monitor = HealthMonitor(
                run_dir=tmp_path,
                detectors=[DivergingClientDetector(persist=1)])
            run_round(monitor, 0, {"g1": 1.0, "g2": 1.0, "bad": -1.0})
        finally:
            obs_metrics.set_registry(previous)
        payload = registry.to_dict()
        hist_names = {h["name"] for h in payload["histograms"]}
        assert "health.client.update_norm" in hist_names
        assert "health.client.latency_seconds" in hist_names
        counters = {(c["name"], c["tags"].get("detector")): c["value"]
                    for c in payload["counters"]}
        assert counters[("health.alerts", "diverging-client")] == 1

    def test_status_line_mentions_worst_alert(self, tmp_path):
        monitor = HealthMonitor(
            run_dir=tmp_path, detectors=[DivergingClientDetector(persist=1)])
        current, alerts = run_round(monitor, 0,
                                    {"g1": 1.0, "g2": 1.0, "bad": -1.0})
        line = monitor.status_line(current, alerts)
        assert "r0" in line and "diverging-client" in line and "bad" in line
