"""Trace spans: nesting, exclusive time, threads, export, null path."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs import trace
from repro.obs.trace import Tracer, span


@pytest.fixture
def tracer():
    tracer = Tracer()
    previous = trace.set_tracer(tracer)
    yield tracer
    trace.set_tracer(previous)


class TestNullPath:
    def test_span_without_tracer_is_shared_noop(self):
        assert trace.get_tracer() is None
        with span("anything", round=3) as s:
            s.set_attr("late", 1)
        assert span("a") is span("b")


class TestNesting:
    def test_parent_child_linkage(self, tracer):
        with span("round", round=0) as parent:
            with span("client_task") as child:
                pass
        assert child.parent_id == parent.span_id
        assert parent.parent_id is None
        assert parent.n_children == 1

    def test_exclusive_excludes_children(self, tracer):
        with span("outer"):
            with span("inner"):
                time.sleep(0.02)
        outer = next(s for s in tracer.spans if s.name == "outer")
        inner = next(s for s in tracer.spans if s.name == "inner")
        assert inner.wall_seconds >= 0.02
        assert outer.exclusive_seconds <= outer.wall_seconds - inner.wall_seconds + 1e-6

    def test_attrs_and_set_attr(self, tracer):
        with span("s", client="site-1") as s:
            s.set_attr("n_updates", 8)
        assert tracer.spans[0].attrs == {"client": "site-1", "n_updates": 8}

    def test_error_recorded_and_reraised(self, tracer):
        with pytest.raises(RuntimeError):
            with span("failing"):
                raise RuntimeError("boom")
        assert tracer.spans[0].attrs["error"] == "RuntimeError"


class TestThreads:
    def test_threads_get_independent_stacks(self, tracer):
        def worker():
            with span("client_thread", client="site-1"):
                with span("client_task"):
                    pass

        with span("round", round=0):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        by_name = {s.name: s for s in tracer.spans}
        # The worker's root span must NOT be parented under the main thread's
        # round span; correlation across threads goes through attrs.
        assert by_name["client_thread"].parent_id is None
        assert by_name["client_task"].parent_id == by_name["client_thread"].span_id
        assert by_name["round"].n_children == 0


class TestExport:
    def test_jsonl_header_and_sorted_spans(self, tracer, tmp_path):
        with span("a"):
            with span("b"):
                pass
        path = tracer.export_jsonl(tmp_path / "trace.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["schema"] == "repro.obs.trace/v2"
        assert lines[0]["trace_id"] == tracer.trace_id
        assert lines[0]["n_spans"] == 2
        spans = lines[1:]
        assert [s["name"] for s in spans] == ["a", "b"]  # sorted by t_start
        for record in spans:
            assert set(record) == {"span_id", "parent_id", "name", "process",
                                   "thread", "t_start", "t_end", "wall_s",
                                   "excl_s", "attrs"}
            assert record["wall_s"] >= record["excl_s"] >= 0


class TestDistributed:
    def test_span_ids_are_process_prefixed_strings(self):
        tracer = Tracer(process="site-1")
        with tracer.span("a") as a:
            pass
        assert a.span_id.startswith("site-1-")

    def test_two_processes_never_collide(self):
        left, right = Tracer(process="site-1"), Tracer(process="site-2")
        ids = set()
        for tracer in (left, right):
            for _ in range(50):
                with tracer.span("x") as s:
                    ids.add(s.span_id)
        assert len(ids) == 100

    def test_traceparent_roundtrip_with_dashed_span_id(self):
        header = trace.format_traceparent("ab" * 16, "site-1-00000a")
        trace_id, span_id = trace.parse_traceparent(header)
        assert trace_id == "ab" * 16
        assert span_id == "site-1-00000a"

    def test_remote_parent_overrides_local_stack(self, tracer):
        with span("round", round=0) as parent:
            ctx = tracer.current_context()
        with span("client_thread"):
            with span("client_task", remote_parent=ctx) as task:
                pass
        assert task.parent_id == parent.span_id

    def test_current_context_carries_trace_id(self, tracer):
        with span("round"):
            ctx = tracer.current_context()
        trace_id, _ = trace.parse_traceparent(ctx["traceparent"])
        assert trace_id == tracer.trace_id
        assert isinstance(ctx["ts"], float)

    def test_clock_offset_aligns_child_to_parent_timeline(self):
        parent = Tracer(process="server")
        child = Tracer(trace_id=parent.trace_id, process="site-1",
                       adopt_clock=True)
        send_mono = time.monotonic()
        ctx = parent.current_context(send_mono)
        child.observe_remote(ctx, send_mono)
        # the same instant must now read (almost) identically on both
        now = time.monotonic()
        t_parent = now - parent.origin
        t_child = (now - child.origin) + child.clock_offset
        assert abs(t_parent - t_child) < 1e-6

    def test_offset_applies_to_spans_recorded_before_sync(self):
        parent = Tracer(process="server")
        child = Tracer(trace_id=parent.trace_id, process="site-1",
                       adopt_clock=True)
        with child.span("early"):
            pass
        child.observe_remote(parent.current_context(time.monotonic()),
                             time.monotonic())
        [record] = child.drain()
        assert record["t_start"] == pytest.approx(
            child.spans[0].t_start + child.clock_offset, abs=1e-5)

    def test_non_adopting_tracer_ignores_remote_clock(self, tracer):
        other = Tracer(process="other")
        tracer.observe_remote(other.current_context(time.monotonic()),
                              time.monotonic())
        assert tracer.clock_offset == 0.0


class TestDrain:
    def test_drain_hands_out_each_span_once(self, tracer):
        with span("a"):
            pass
        first = tracer.drain()
        assert [s["name"] for s in first] == ["a"]
        assert tracer.drain() == []
        with span("b"):
            pass
        assert [s["name"] for s in tracer.drain()] == ["b"]
        # the in-memory record keeps everything for end-of-run reporting
        assert [s.name for s in tracer.spans] == ["a", "b"]

    def test_open_spans_visible_until_closed(self, tracer):
        with span("outer") as outer:
            opened = tracer.open_spans()
            assert [o["span_id"] for o in opened] == [outer.span_id]
            assert "t_end" not in opened[0]
        assert tracer.open_spans() == []

    def test_flush_hook_fires_above_threshold(self, tracer):
        kicks = []
        tracer.set_flush_hook(lambda: kicks.append(1), threshold=0.01)
        with span("fast"):
            pass
        assert kicks == []
        with span("slow"):
            time.sleep(0.02)
        assert kicks == [1]

    def test_record_complete_parents_under_current_span(self, tracer):
        with span("client_task") as task:
            tracer.record_complete("codec.encode", 0.005, codec="raw",
                                   bytes=128)
        encode = next(s for s in tracer.spans if s.name == "codec.encode")
        assert encode.parent_id == task.span_id
        assert encode.attrs == {"codec": "raw", "bytes": 128}
        assert encode.wall_seconds == pytest.approx(0.005)
        assert task.n_children == 1
