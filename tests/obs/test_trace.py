"""Trace spans: nesting, exclusive time, threads, export, null path."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs import trace
from repro.obs.trace import Tracer, span


@pytest.fixture
def tracer():
    tracer = Tracer()
    previous = trace.set_tracer(tracer)
    yield tracer
    trace.set_tracer(previous)


class TestNullPath:
    def test_span_without_tracer_is_shared_noop(self):
        assert trace.get_tracer() is None
        with span("anything", round=3) as s:
            s.set_attr("late", 1)
        assert span("a") is span("b")


class TestNesting:
    def test_parent_child_linkage(self, tracer):
        with span("round", round=0) as parent:
            with span("client_task") as child:
                pass
        assert child.parent_id == parent.span_id
        assert parent.parent_id is None
        assert parent.n_children == 1

    def test_exclusive_excludes_children(self, tracer):
        with span("outer"):
            with span("inner"):
                time.sleep(0.02)
        outer = next(s for s in tracer.spans if s.name == "outer")
        inner = next(s for s in tracer.spans if s.name == "inner")
        assert inner.wall_seconds >= 0.02
        assert outer.exclusive_seconds <= outer.wall_seconds - inner.wall_seconds + 1e-6

    def test_attrs_and_set_attr(self, tracer):
        with span("s", client="site-1") as s:
            s.set_attr("n_updates", 8)
        assert tracer.spans[0].attrs == {"client": "site-1", "n_updates": 8}

    def test_error_recorded_and_reraised(self, tracer):
        with pytest.raises(RuntimeError):
            with span("failing"):
                raise RuntimeError("boom")
        assert tracer.spans[0].attrs["error"] == "RuntimeError"


class TestThreads:
    def test_threads_get_independent_stacks(self, tracer):
        def worker():
            with span("client_thread", client="site-1"):
                with span("client_task"):
                    pass

        with span("round", round=0):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        by_name = {s.name: s for s in tracer.spans}
        # The worker's root span must NOT be parented under the main thread's
        # round span; correlation across threads goes through attrs.
        assert by_name["client_thread"].parent_id is None
        assert by_name["client_task"].parent_id == by_name["client_thread"].span_id
        assert by_name["round"].n_children == 0


class TestExport:
    def test_jsonl_header_and_sorted_spans(self, tracer, tmp_path):
        with span("a"):
            with span("b"):
                pass
        path = tracer.export_jsonl(tmp_path / "trace.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["schema"] == "repro.obs.trace/v1"
        assert lines[0]["n_spans"] == 2
        spans = lines[1:]
        assert [s["name"] for s in spans] == ["a", "b"]  # sorted by t_start
        for record in spans:
            assert set(record) == {"span_id", "parent_id", "name", "thread",
                                   "t_start", "t_end", "wall_s", "excl_s",
                                   "attrs"}
            assert record["wall_s"] >= record["excl_s"] >= 0
