"""MetricsRegistry: instruments, tags, percentiles, merge, enable/disable."""

from __future__ import annotations

import json

import pytest

from repro.obs import metrics
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_tags_create_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("faults", kind="drop").inc()
        registry.counter("faults", kind="delay").inc(2)
        assert registry.counter("faults", kind="drop").value == 1
        assert registry.counter("faults", kind="delay").value == 2

    def test_same_tags_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c", a=1, b=2) is registry.counter("c", b=2, a=1)


class TestGauge:
    def test_keeps_last_value(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(1.5)
        gauge.set(2.5)
        assert gauge.value == 2.5


class TestHistogram:
    def test_count_sum_mean_min_max(self):
        hist = MetricsRegistry().histogram("h")
        for value in (0.001, 0.002, 0.003):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(0.006)
        assert hist.mean == pytest.approx(0.002)
        assert hist.min == 0.001
        assert hist.max == 0.003

    def test_percentiles_bounded_by_observations(self):
        hist = MetricsRegistry().histogram("h")
        for value in (0.0012, 0.0017, 0.3, 0.4, 0.45):
            hist.observe(value)
        assert 0.0012 <= hist.percentile(10) <= 0.0025
        assert 0.25 < hist.percentile(99) <= 0.45
        assert hist.percentile(100) == pytest.approx(0.45, rel=0.1)

    def test_percentile_empty_is_zero(self):
        assert MetricsRegistry().histogram("h").percentile(50) == 0.0

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h").percentile(101)

    def test_overflow_bucket(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(DEFAULT_BUCKETS[-1] * 10)
        assert hist.count == 1
        assert hist.percentile(50) == pytest.approx(DEFAULT_BUCKETS[-1] * 10)

    def test_custom_buckets_must_ascend(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))


class TestDisabledRegistry:
    def test_null_instruments_do_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(1)
        assert registry.counter("c").value == 0.0
        assert registry.histogram("h").percentile(99) == 0.0

    def test_to_dict_is_empty(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc()
        payload = registry.to_dict()
        assert payload["counters"] == []
        assert payload["gauges"] == []
        assert payload["histograms"] == []

    def test_global_registry_starts_disabled(self):
        # Module shorthands are no-ops until a session installs a registry.
        metrics.counter("tier1.should_not_record").inc()
        assert not any(c["name"] == "tier1.should_not_record"
                       for c in metrics.get_registry().to_dict()["counters"])


class TestSetRegistry:
    def test_swap_and_restore(self):
        mine = MetricsRegistry()
        previous = metrics.set_registry(mine)
        try:
            metrics.counter("swapped").inc()
            assert mine.counter("swapped").value == 1
        finally:
            assert metrics.set_registry(previous) is mine


class TestMerge:
    def test_counters_add_gauges_take_histograms_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.gauge("g").set(7)
        a.histogram("h").observe(0.001)
        b.histogram("h").observe(0.1)
        b.histogram("h").observe(0.2)
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.gauge("g").value == 7
        hist = a.histogram("h")
        assert hist.count == 3
        assert hist.min == 0.001
        assert hist.max == 0.2

    def test_merge_preserves_tags(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("faults", kind="drop").inc(4)
        a.merge(b)
        assert a.counter("faults", kind="drop").value == 4

    def test_merge_into_disabled_is_noop(self):
        a = MetricsRegistry(enabled=False)
        b = MetricsRegistry()
        b.counter("c").inc()
        a.merge(b)
        assert a.to_dict()["counters"] == []


class TestExport:
    def test_schema_and_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c", topic="train").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.01)
        path = registry.save_json(tmp_path / "metrics.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.obs.metrics/v1"
        assert payload["counters"][0] == {"name": "c", "tags": {"topic": "train"},
                                          "value": 2}
        (hist,) = payload["histograms"]
        assert hist["count"] == 1
        assert len(hist["bucket_counts"]) == len(hist["buckets"]) + 1

    def test_export_sorted_by_name_and_tags(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a", t="2").inc()
        registry.counter("a", t="1").inc()
        names = [(c["name"], c["tags"]) for c in registry.to_dict()["counters"]]
        assert names == [("a", {"t": "1"}), ("a", {"t": "2"}), ("z", {})]


class TestExactSmallSamplePercentiles:
    """Regression: small-sample percentiles must be exact, not bucket bounds."""

    def test_single_observation_p50_is_the_observation(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(0.03)
        assert hist.percentile(50) == 0.03
        assert hist.percentile(0) == 0.03
        assert hist.percentile(100) == 0.03

    def test_two_observations_interpolate_exactly(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(0.0002)
        hist.observe(0.03)
        # exact midpoint, not the 0.00025 bucket bound
        assert hist.percentile(50) == pytest.approx(0.0151)

    def test_matches_numpy_linear_method(self):
        import numpy as np

        values = [0.0001 * (i ** 2 + 1) for i in range(20)]
        hist = MetricsRegistry().histogram("h")
        for v in values:
            hist.observe(v)
        for p in (10, 25, 50, 75, 90, 99):
            assert hist.percentile(p) == pytest.approx(
                float(np.percentile(values, p)))

    def test_falls_back_to_buckets_past_the_limit(self):
        hist = MetricsRegistry().histogram("h")
        for i in range(metrics.EXACT_SAMPLE_LIMIT + 1):
            hist.observe(0.001 * (i + 1))
        assert hist._samples is None
        # bucket estimate stays within the observed range
        assert hist.min <= hist.percentile(50) <= hist.max

    def test_merge_keeps_exactness_when_reservoirs_fit(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe(0.01)
        b.histogram("h").observe(0.05)
        a.merge(b)
        assert a.histogram("h").percentile(50) == pytest.approx(0.03)

    def test_merge_drops_reservoir_when_too_big(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for i in range(metrics.EXACT_SAMPLE_LIMIT - 1):
            a.histogram("h").observe(0.001)
        for i in range(10):
            b.histogram("h").observe(0.002)
        a.merge(b)
        assert a.histogram("h")._samples is None
        assert a.histogram("h").count == metrics.EXACT_SAMPLE_LIMIT + 9
