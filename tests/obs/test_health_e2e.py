"""Acceptance e2e: a seeded diverging client is named, and runs diff sees it.

Mirrors the CI ``health-smoke`` job: one clean run and one run with an
injected diverging client, both with telemetry+health on, then a registry
diff whose verdict must be nonzero.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.flare import DXO, FLJob, SimulatorRunner
from repro.obs import HealthMonitor
from repro.obs.health import DivergingClientDetector, default_detectors
from repro.obs.registry import diff_runs
from repro.obs.report import main as obs_main

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from flare.helpers import ToyLearner, toy_weights  # noqa: E402


BAD_SITE = "site-2"


class InjectedDivergingLearner(ToyLearner):
    def train(self, dxo: DXO, fl_ctx) -> DXO:
        result = super().train(dxo, fl_ctx)
        if self.site_name == BAD_SITE:
            result.data = {k: np.asarray(v) - 40.0
                           for k, v in dxo.data.items()}
        return result


def run_sim(run_dir, learner_cls, rounds=3):
    job = FLJob(name="health-e2e", initial_weights=toy_weights(),
                learner_factory=lambda name: learner_cls(name, delta=1.0)
                if learner_cls is ToyLearner else learner_cls(name),
                num_rounds=rounds, min_clients=2)
    runner = SimulatorRunner(job, n_clients=4, seed=0, run_dir=run_dir,
                             telemetry=True,
                             health=HealthMonitor(
                                 run_dir=run_dir,
                                 detectors=default_detectors()))
    return runner.run()


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    base = tmp_path_factory.mktemp("health-e2e")
    clean = run_sim(base / "clean", ToyLearner)
    dirty = run_sim(base / "dirty", InjectedDivergingLearner)
    return base, clean, dirty


class TestDivergingClientIsNamed:
    def test_alert_in_runstats_names_client_and_round(self, runs):
        _, _, dirty = runs
        diverging = [a for a in dirty.stats.alerts
                     if a.detector == "diverging-client"]
        assert diverging, "injected divergence must raise an alert"
        assert all(a.client == BAD_SITE for a in diverging)
        assert {a.round_number for a in diverging} <= {0, 1, 2}
        # escalation to critical once persistent
        assert any(a.severity == "critical" for a in diverging)

    def test_alert_in_health_jsonl_names_client(self, runs):
        _, _, dirty = runs
        lines = [json.loads(line) for line in
                 (dirty.run_dir / "health.jsonl").read_text().splitlines()]
        alerts = [l for l in lines if l.get("event") == "alert"
                  and l.get("detector") == "diverging-client"]
        assert alerts
        assert {a["client"] for a in alerts} == {BAD_SITE}
        rounds = [l for l in lines if l.get("event") == "round"]
        assert len(rounds) == 3
        assert BAD_SITE in rounds[0]["clients"]

    def test_clean_run_has_no_diverging_alerts(self, runs):
        _, clean, _ = runs
        assert not [a for a in clean.stats.alerts
                    if a.detector == "diverging-client"]


class TestRunsDiffVerdict:
    def test_diff_vs_clean_baseline_is_nonzero(self, runs):
        base, clean, dirty = runs
        report = diff_runs(clean.run_dir, dirty.run_dir,
                           dimensions=["alerts"])
        assert report.exit_code == 2
        regressed = {line.dimension for line in report.regressions}
        assert "alerts_critical" in regressed or "alerts_warning" in regressed

    def test_cli_exit_code_matches(self, runs, capsys):
        base, clean, dirty = runs
        code = obs_main(["runs", "diff", str(clean.run_dir),
                         str(dirty.run_dir), "--root", str(base),
                         "--dimensions", "alerts"])
        assert code == 2
        assert "REGRESSION" in capsys.readouterr().out

    def test_self_diff_is_clean(self, runs):
        _, clean, _ = runs
        assert diff_runs(clean.run_dir, clean.run_dir).exit_code == 0


class TestArtifactsWiredThroughStats:
    def test_stats_points_at_health_artifact(self, runs):
        _, _, dirty = runs
        assert "health" in dirty.stats.telemetry
        stats_json = json.loads((dirty.run_dir / "stats.json").read_text())
        assert stats_json.get("alerts"), "alerts must survive stats.json"
