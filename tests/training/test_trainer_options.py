"""TrainConfig extensions: class weights and early stopping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro.models import build_classifier
from repro.training import TrainConfig, train_classifier


class TestClassWeightedLoss:
    def test_weights_change_loss_value(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(size=(6, 2)))
        labels = np.array([0, 0, 0, 0, 0, 1])
        plain = F.cross_entropy(logits, labels)
        weighted = F.cross_entropy(logits, labels,
                                   class_weights=np.array([1.0, 10.0]))
        assert float(plain.data) != pytest.approx(float(weighted.data))

    def test_uniform_weights_match_unweighted(self):
        rng = np.random.default_rng(1)
        logits = Tensor(rng.normal(size=(5, 3)))
        labels = rng.integers(0, 3, size=5)
        plain = F.cross_entropy(logits, labels)
        uniform = F.cross_entropy(logits, labels, class_weights=np.ones(3))
        assert float(plain.data) == pytest.approx(float(uniform.data), abs=1e-6)

    def test_weighted_mean_uses_weight_denominator(self):
        """Torch semantics: mean = sum(w_i * l_i) / sum(w_i)."""
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]]))
        labels = np.array([0, 1])
        # both rows have identical per-row loss; any weights keep the mean
        weighted = F.cross_entropy(logits, labels,
                                   class_weights=np.array([1.0, 3.0]))
        plain = F.cross_entropy(logits, labels)
        assert float(weighted.data) == pytest.approx(float(plain.data), abs=1e-6)

    def test_bad_weight_shape(self):
        logits = Tensor(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            F.cross_entropy(logits, np.array([0, 1]),
                            class_weights=np.ones(3))

    def test_weighted_gradient(self):
        from repro.autograd import check_gradients

        rng = np.random.default_rng(2)
        logits = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        labels = rng.integers(0, 2, size=4)
        weights = np.array([1.0, 4.0])
        check_gradients(lambda: F.cross_entropy(logits, labels,
                                                class_weights=weights),
                        [logits])

    def test_minority_upweighting_increases_positive_predictions(self, tiny_split,
                                                                 vocab_size):
        """Upweighting the rare ADR class should raise predicted positives."""
        train, valid = tiny_split

        def count_positives(class_weights):
            model = build_classifier("lstm-tiny", vocab_size=vocab_size, seed=3)
            config = TrainConfig(epochs=6, batch_size=16, lr=5e-3, seed=3,
                                 class_weights=class_weights)
            train_classifier(model, train, config)
            from repro.autograd import no_grad

            with no_grad():
                logits = model(valid.input_ids, attention_mask=valid.attention_mask)
            return int((logits.data.argmax(axis=1) == 1).sum())

        plain = count_positives(None)
        upweighted = count_positives(np.array([1.0, 20.0]))
        assert upweighted > plain


class TestEarlyStopping:
    def test_stops_before_epoch_budget(self, tiny_split, vocab_size):
        train, valid = tiny_split
        model = build_classifier("lstm-tiny", vocab_size=vocab_size, seed=0)
        config = TrainConfig(epochs=30, batch_size=16, lr=1e-2, seed=0,
                             early_stopping_patience=2)
        history = train_classifier(model, train, config, valid=valid)
        assert len(history) < 30

    def test_restores_best_weights(self, tiny_split, vocab_size):
        from repro.training import evaluate_classifier

        train, valid = tiny_split
        model = build_classifier("lstm-tiny", vocab_size=vocab_size, seed=0)
        config = TrainConfig(epochs=12, batch_size=16, lr=1e-2, seed=0,
                             early_stopping_patience=2)
        history = train_classifier(model, train, config, valid=valid)
        best_seen = max(m.valid_acc for m in history if m.valid_acc is not None)
        final_acc, _ = evaluate_classifier(model, valid)
        assert final_acc == pytest.approx(best_seen, abs=1e-6)

    def test_without_valid_never_stops_early(self, tiny_split, vocab_size):
        train, _ = tiny_split
        model = build_classifier("lstm-tiny", vocab_size=vocab_size, seed=0)
        config = TrainConfig(epochs=3, early_stopping_patience=1)
        history = train_classifier(model, train, config)  # no valid set
        assert len(history) == 3

    def test_bad_patience(self):
        with pytest.raises(ValueError):
            TrainConfig(early_stopping_patience=0)
