"""Centralized / standalone / federated schemes (tiny integration runs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import partition_balanced
from repro.models import build_classifier, build_mlm_model
from repro.training import (
    run_centralized,
    run_centralized_mlm,
    run_federated,
    run_federated_mlm,
    run_standalone,
)


@pytest.fixture(scope="module")
def setup(tiny_split, vocab_size):
    train, valid = tiny_split
    shards = {f"site-{i + 1}": train.subset(s)
              for i, s in enumerate(partition_balanced(len(train), 3, seed=0))}

    def factory():
        return build_classifier("lstm-tiny", vocab_size=vocab_size, seed=4)

    return train, valid, shards, factory


class TestClassificationSchemes:
    def test_centralized(self, setup):
        train, valid, _, factory = setup
        result = run_centralized(factory, train, valid, epochs=2, lr=1e-2)
        assert 0 <= result.final_acc <= 1
        assert result.best_acc >= result.final_acc
        assert len(result.history) == 2

    def test_standalone(self, setup):
        _, valid, shards, factory = setup
        result = run_standalone(factory, shards, valid, epochs=1)
        assert set(result.site_accs) == set(shards)
        assert 0 <= result.mean_acc <= 1
        assert result.best_acc >= result.mean_acc

    def test_federated(self, setup, tmp_path):
        _, valid, shards, factory = setup
        result = run_federated(factory, shards, valid, num_rounds=2,
                               local_epochs=1, run_dir=tmp_path)
        assert 0 <= result.final_acc <= 1
        assert result.simulation.stats.num_rounds == 2
        assert len(result.simulation.tokens) == 3

    def test_federated_sequential_mode(self, setup, tmp_path):
        _, valid, shards, factory = setup
        result = run_federated(factory, shards, valid, num_rounds=1,
                               local_epochs=1, threads=False, run_dir=tmp_path)
        assert result.simulation.stats.num_rounds == 1


class TestMlmSchemes:
    def test_centralized_mlm(self, tiny_sequences, tiny_collator, vocab_size):
        def factory():
            return build_mlm_model("bert-tiny", vocab_size=vocab_size, seed=0,
                                   max_seq_len=24)

        history = run_centralized_mlm(factory, tiny_sequences, tiny_sequences,
                                      tiny_collator, epochs=2, lr=1e-3)
        assert len(history) == 2
        assert history[-1].valid_loss is not None

    def test_federated_mlm(self, tiny_sequences, tiny_collator, vocab_size):
        def factory():
            return build_mlm_model("bert-tiny", vocab_size=vocab_size, seed=0,
                                   max_seq_len=24)

        shards = {f"site-{i + 1}": tiny_sequences.subset(s)
                  for i, s in enumerate(partition_balanced(len(tiny_sequences), 2,
                                                           seed=0))}
        losses, simulation = run_federated_mlm(factory, shards, tiny_sequences,
                                               tiny_collator, num_rounds=2,
                                               local_epochs=1, lr=1e-3)
        assert len(losses) == 2
        assert all(np.isfinite(losses))
        assert simulation.stats.num_rounds == 2
