"""Calibration metrics: Brier score and expected calibration error."""

from __future__ import annotations

import numpy as np
import pytest

from repro.training import brier_score, expected_calibration_error


class TestBrier:
    def test_perfect_predictions(self):
        assert brier_score(np.array([1.0, 0.0]), np.array([1, 0])) == 0.0

    def test_uninformative_half(self):
        assert brier_score(np.full(10, 0.5), np.ones(10)) == pytest.approx(0.25)

    def test_worst_case(self):
        assert brier_score(np.array([0.0, 1.0]), np.array([1, 0])) == 1.0

    def test_empty(self):
        assert brier_score(np.array([]), np.array([])) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            brier_score(np.array([1.5]), np.array([1]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            brier_score(np.array([0.5]), np.array([1, 0]))


class TestECE:
    def test_perfectly_calibrated(self):
        """In each bin, empirical frequency equals the stated probability."""
        rng = np.random.default_rng(0)
        probabilities = rng.uniform(0.05, 0.95, size=200_00)
        labels = (rng.random(200_00) < probabilities).astype(int)
        assert expected_calibration_error(probabilities, labels) < 0.02

    def test_overconfident_model_penalised(self):
        # claims 90% but is right half the time
        probabilities = np.full(1000, 0.9)
        labels = np.array([1, 0] * 500)
        ece = expected_calibration_error(probabilities, labels)
        assert ece == pytest.approx(0.4, abs=0.01)

    def test_empty(self):
        assert expected_calibration_error(np.array([]), np.array([])) == 0.0

    def test_single_bin(self):
        probabilities = np.array([0.2, 0.8])
        labels = np.array([0, 1])
        ece = expected_calibration_error(probabilities, labels, n_bins=1)
        assert ece == pytest.approx(0.0)  # mean conf 0.5, mean acc 0.5

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            expected_calibration_error(np.array([0.5]), np.array([1]), n_bins=0)

    def test_probability_one_lands_in_top_bin(self):
        ece = expected_calibration_error(np.array([1.0]), np.array([1]))
        assert ece == 0.0
