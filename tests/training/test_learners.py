"""Federated learners: classification (CiBertLearner analog) and MLM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import partition_balanced
from repro.flare import DXO, DataKind, FLContext, MetaKey
from repro.models import build_classifier, build_mlm_model
from repro.training import ClinicalClassificationLearner, MlmPretrainLearner


def ctx(round_number=0):
    c = FLContext(identity="site-1")
    c.set_prop("current_round", round_number)
    return c


@pytest.fixture()
def shard(tiny_split):
    train, _ = tiny_split
    return train.subset(partition_balanced(len(train), 4, seed=0)[0])


@pytest.fixture()
def classification_learner(shard, tiny_split, vocab_size):
    _, valid = tiny_split

    def factory():
        return build_classifier("lstm-tiny", vocab_size=vocab_size, seed=0)

    learner = ClinicalClassificationLearner(
        site_name="site-1", model_factory=factory, train_data=shard,
        valid_data=valid, local_epochs=1, batch_size=16, lr=1e-2, seed=0)
    learner.initialize(ctx())
    return learner


def weights_dxo(learner):
    return DXO(DataKind.WEIGHTS,
               data={k: np.asarray(v) for k, v in learner.model.state_dict().items()})


class TestClassificationLearner:
    def test_train_returns_weights_with_meta(self, classification_learner):
        result = classification_learner.train(weights_dxo(classification_learner), ctx())
        assert result.data_kind == DataKind.WEIGHTS
        steps = result.get_meta_prop(MetaKey.NUM_STEPS_CURRENT_ROUND)
        assert steps == len(classification_learner.train_data)
        assert 0 <= result.get_meta_prop("valid_acc") <= 1
        assert result.get_meta_prop("train_loss") > 0

    def test_train_changes_weights(self, classification_learner):
        incoming = weights_dxo(classification_learner)
        result = classification_learner.train(incoming, ctx())
        changed = any(not np.allclose(result.data[k], incoming.data[k])
                      for k in incoming.data)
        assert changed

    def test_loads_incoming_weights(self, classification_learner):
        zeroed = {k: np.zeros_like(np.asarray(v))
                  for k, v in classification_learner.model.state_dict().items()}
        classification_learner.train(DXO(DataKind.WEIGHTS, data=zeroed), ctx())
        # training started from zeros, so e.g. embedding rows for absent
        # tokens must still be zero (Adam never updates unused rows... they
        # may have weight decay 0) — check a softer invariant: the learner's
        # model state no longer equals its random init
        assert classification_learner.model is not None

    def test_send_diff_mode(self, shard, tiny_split, vocab_size):
        _, valid = tiny_split

        def factory():
            return build_classifier("lstm-tiny", vocab_size=vocab_size, seed=0)

        learner = ClinicalClassificationLearner(
            site_name="site-1", model_factory=factory, train_data=shard,
            valid_data=valid, local_epochs=1, batch_size=16, lr=1e-2,
            send_diff=True)
        learner.initialize(ctx())
        incoming = DXO(DataKind.WEIGHTS,
                       data={k: np.asarray(v)
                             for k, v in learner.model.state_dict().items()})
        result = learner.train(incoming, ctx())
        assert result.data_kind == DataKind.WEIGHT_DIFF
        # diff + incoming must equal the learner's current weights
        current = learner.model.state_dict()
        for key in result.data:
            np.testing.assert_allclose(incoming.data[key] + result.data[key],
                                       current[key], atol=1e-5)

    def test_validate(self, classification_learner):
        metrics = classification_learner.validate(
            weights_dxo(classification_learner), ctx())
        assert set(metrics) >= {"valid_acc", "valid_loss"}

    def test_empty_shard_rejected(self, tiny_split, vocab_size):
        train, _ = tiny_split
        empty = train.subset(np.array([], dtype=np.int64))
        with pytest.raises(ValueError, match="empty"):
            ClinicalClassificationLearner(
                site_name="s", model_factory=lambda: None, train_data=empty,
                valid_data=None)

    def test_use_before_initialize(self, shard, vocab_size):
        learner = ClinicalClassificationLearner(
            site_name="s",
            model_factory=lambda: build_classifier("lstm-tiny", vocab_size=vocab_size),
            train_data=shard, valid_data=None)
        with pytest.raises(RuntimeError, match="initialize"):
            learner.train(DXO(DataKind.WEIGHTS, data={}), ctx())

    def test_epoch_log_lines(self, classification_learner):
        from repro.flare import LogCapture

        capture = LogCapture().attach()
        try:
            classification_learner.train(weights_dxo(classification_learner), ctx())
        finally:
            capture.detach()
        assert any("Local epoch site-1: 1/1" in line for line in capture.lines)


class TestMlmLearner:
    @pytest.fixture()
    def mlm_learner(self, tiny_sequences, tiny_collator, vocab_size):
        def factory():
            return build_mlm_model("bert-tiny", vocab_size=vocab_size, seed=0,
                                   max_seq_len=24)

        learner = MlmPretrainLearner(
            site_name="site-1", model_factory=factory,
            train_data=tiny_sequences, collator=tiny_collator,
            local_epochs=1, batch_size=32, lr=1e-3)
        learner.initialize(ctx())
        return learner

    def test_train_returns_weights(self, mlm_learner):
        incoming = DXO(DataKind.WEIGHTS,
                       data={k: np.asarray(v)
                             for k, v in mlm_learner.model.state_dict().items()})
        result = mlm_learner.train(incoming, ctx())
        assert result.data_kind == DataKind.WEIGHTS
        assert result.get_meta_prop("train_loss") > 0

    def test_validate_returns_mlm_loss(self, mlm_learner):
        incoming = DXO(DataKind.WEIGHTS,
                       data={k: np.asarray(v)
                             for k, v in mlm_learner.model.state_dict().items()})
        metrics = mlm_learner.validate(incoming, ctx())
        assert metrics["mlm_loss"] > 0

    def test_empty_shard_rejected(self, tiny_collator):
        from repro.data import SequenceDataset

        empty = SequenceDataset(np.zeros((0, 4), dtype=np.int64),
                                np.zeros((0, 4), dtype=bool))
        with pytest.raises(ValueError, match="empty"):
            MlmPretrainLearner(site_name="s", model_factory=lambda: None,
                               train_data=empty, collator=tiny_collator)
