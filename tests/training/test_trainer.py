"""Training loops: classification and MLM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import MlmCollator, SequenceDataset
from repro.models import build_classifier, build_mlm_model
from repro.training import (
    TrainConfig,
    evaluate_classifier,
    evaluate_mlm,
    train_classifier,
    train_mlm,
)


class TestTrainConfig:
    def test_defaults_match_paper(self):
        config = TrainConfig()
        assert config.epochs == 10 and config.lr == 1e-2

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(batch_size=0)


class TestClassifierLoop:
    def test_loss_decreases(self, tiny_split, vocab_size):
        train, valid = tiny_split
        model = build_classifier("lstm-tiny", vocab_size=vocab_size, seed=0)
        history = train_classifier(model, train,
                                   TrainConfig(epochs=4, batch_size=32, lr=1e-2),
                                   valid=valid)
        assert len(history) == 4
        assert history[-1].train_loss < history[0].train_loss

    def test_history_has_validation_metrics(self, tiny_split, vocab_size):
        train, valid = tiny_split
        model = build_classifier("lstm-tiny", vocab_size=vocab_size, seed=0)
        history = train_classifier(model, train, TrainConfig(epochs=1), valid=valid)
        assert history[0].valid_acc is not None
        assert history[0].valid_loss is not None
        assert history[0].seconds > 0

    def test_learns_above_chance(self, tiny_split, vocab_size):
        """On the synthetic cohort, a trained model must beat majority vote."""
        train, valid = tiny_split
        model = build_classifier("lstm-tiny", vocab_size=vocab_size, seed=1)
        train_classifier(model, train, TrainConfig(epochs=12, batch_size=16, lr=5e-3))
        accuracy, _ = evaluate_classifier(model, train)
        majority = max(train.positive_rate, 1 - train.positive_rate)
        assert accuracy > majority

    def test_evaluate_restores_training_mode(self, tiny_split, vocab_size):
        train, valid = tiny_split
        model = build_classifier("lstm-tiny", vocab_size=vocab_size, seed=0)
        model.train()
        evaluate_classifier(model, valid)
        assert model.training

    def test_deterministic_given_seed(self, tiny_split, vocab_size):
        train, _ = tiny_split
        results = []
        for _ in range(2):
            model = build_classifier("lstm-tiny", vocab_size=vocab_size, seed=2)
            history = train_classifier(model, train,
                                       TrainConfig(epochs=1, seed=3))
            results.append(history[0].train_loss)
        assert results[0] == pytest.approx(results[1], abs=1e-6)


class TestMlmLoop:
    def test_loss_decreases(self, tiny_sequences, tiny_collator, vocab_size):
        model = build_mlm_model("bert-tiny", vocab_size=vocab_size, seed=0,
                                max_seq_len=24)
        history = train_mlm(model, tiny_sequences, tiny_collator,
                            TrainConfig(epochs=3, batch_size=32, lr=1e-3))
        assert history[-1].train_loss < history[0].train_loss

    def test_initial_loss_near_log_vocab(self, tiny_sequences, tiny_collator,
                                         vocab_size):
        """An untrained MLM's loss is ≈ ln(V) — the Fig. 2 starting point."""
        model = build_mlm_model("bert-tiny", vocab_size=vocab_size, seed=0,
                                max_seq_len=24)
        loss = evaluate_mlm(model, tiny_sequences, tiny_collator)
        assert abs(loss - np.log(vocab_size)) < 1.0

    def test_valid_loss_recorded(self, tiny_sequences, tiny_collator, vocab_size):
        model = build_mlm_model("bert-tiny", vocab_size=vocab_size, seed=0,
                                max_seq_len=24)
        history = train_mlm(model, tiny_sequences, tiny_collator,
                            TrainConfig(epochs=1, batch_size=32, lr=1e-3),
                            valid=tiny_sequences)
        assert history[0].valid_loss is not None
