"""Evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.training import (
    MetricAverager,
    confusion_matrix,
    precision_recall_f1,
    top1_accuracy,
)


class TestTop1:
    def test_perfect(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert top1_accuracy(logits, np.array([1, 0])) == 1.0

    def test_partial(self):
        logits = np.array([[0.1, 0.9], [0.1, 0.9], [0.9, 0.1], [0.9, 0.1]])
        assert top1_accuracy(logits, np.array([1, 0, 0, 1])) == 0.5

    def test_empty(self):
        assert top1_accuracy(np.zeros((0, 2)), np.zeros(0)) == 0.0

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros((2, 2)), np.zeros(3))

    def test_multiclass(self):
        logits = np.eye(4) * 10
        assert top1_accuracy(logits, np.arange(4)) == 1.0


class TestConfusion:
    def test_layout_true_rows(self):
        matrix = confusion_matrix(np.array([1, 0, 1]), np.array([1, 1, 1]), 2)
        # labels: [1, 1, 1]; predictions [1, 0, 1] → row 1: [1, 2]
        np.testing.assert_array_equal(matrix, [[0, 0], [1, 2]])

    def test_total_count(self):
        rng = np.random.default_rng(0)
        preds = rng.integers(0, 3, 50)
        labels = rng.integers(0, 3, 50)
        assert confusion_matrix(preds, labels, 3).sum() == 50


class TestPRF:
    def test_perfect(self):
        p, r, f1 = precision_recall_f1(np.array([1, 0, 1]), np.array([1, 0, 1]))
        assert (p, r, f1) == (1.0, 1.0, 1.0)

    def test_no_positives_predicted(self):
        p, r, f1 = precision_recall_f1(np.zeros(4), np.array([1, 1, 0, 0]))
        assert (p, r, f1) == (0.0, 0.0, 0.0)

    def test_known_values(self):
        # TP=1, FP=1, FN=1
        p, r, f1 = precision_recall_f1(np.array([1, 1, 0, 0]),
                                       np.array([1, 0, 1, 0]))
        assert p == 0.5 and r == 0.5 and f1 == 0.5


class TestAverager:
    def test_weighted_average(self):
        avg = MetricAverager()
        avg.update(1.0, weight=1)
        avg.update(3.0, weight=3)
        assert avg.average == pytest.approx(2.5)
        assert avg.count == 4

    def test_empty_average_zero(self):
        assert MetricAverager().average == 0.0

    def test_bad_weight(self):
        with pytest.raises(ValueError):
            MetricAverager().update(1.0, weight=0)
