"""FedProx regularizer and ROC-AUC metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data import partition_balanced
from repro.flare import DXO, DataKind, FLContext
from repro.models import build_classifier
from repro.training import (
    ClinicalClassificationLearner,
    make_proximal_regularizer,
    roc_auc,
)


class TestRocAuc:
    def test_perfect_ranking(self):
        assert roc_auc(np.array([0.9, 0.8, 0.2, 0.1]), np.array([1, 1, 0, 0])) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc(np.array([0.1, 0.2, 0.8, 0.9]), np.array([1, 1, 0, 0])) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        value = roc_auc(rng.random(4000), rng.integers(0, 2, 4000))
        assert abs(value - 0.5) < 0.03

    def test_ties_get_average_rank(self):
        # all scores equal → AUC exactly 0.5
        assert roc_auc(np.ones(10), np.array([1] * 5 + [0] * 5)) == pytest.approx(0.5)

    def test_degenerate_single_class(self):
        assert roc_auc(np.array([0.1, 0.9]), np.array([1, 1])) == 0.5

    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(1)
        scores = rng.random(60)
        labels = rng.integers(0, 2, 60)
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
        expected = wins / (len(pos) * len(neg))
        assert roc_auc(scores, labels) == pytest.approx(expected)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            roc_auc(np.zeros(3), np.zeros(4))


class TestProximalRegularizer:
    def test_zero_at_reference(self):
        model = build_classifier("lstm-tiny", vocab_size=20, seed=0)
        reg = make_proximal_regularizer(0.1, model.state_dict())
        assert float(reg(model).data) == pytest.approx(0.0)

    def test_quadratic_growth(self):
        model = build_classifier("lstm-tiny", vocab_size=20, seed=0)
        reference = model.state_dict()
        reg = make_proximal_regularizer(2.0, reference)
        for param in model.parameters():
            param.data += 1.0
        total = sum(p.size for p in model.parameters())
        # (mu/2) * sum((w - ref)^2) = 1.0 * total
        assert float(reg(model).data) == pytest.approx(total, rel=1e-4)

    def test_gradient_points_back_to_reference(self):
        model = build_classifier("lstm-tiny", vocab_size=20, seed=0)
        reference = model.state_dict()
        for param in model.parameters():
            param.data += 0.5
        reg = make_proximal_regularizer(1.0, reference)
        penalty = reg(model)
        penalty.backward()
        first = model.parameters()[0]
        np.testing.assert_allclose(first.grad, 0.5, atol=1e-5)

    def test_missing_keys_unconstrained(self):
        model = build_classifier("lstm-tiny", vocab_size=20, seed=0)
        reg = make_proximal_regularizer(1.0, {})
        assert float(reg(model).data) == 0.0

    def test_negative_mu_rejected(self):
        with pytest.raises(ValueError):
            make_proximal_regularizer(-0.1, {})


class TestFedProxLearner:
    def test_mu_shrinks_update_norm(self, tiny_split, vocab_size):
        """A large proximal term must keep local weights near the global."""
        train, valid = tiny_split
        shard = train.subset(partition_balanced(len(train), 2, seed=0)[0])

        def factory():
            return build_classifier("lstm-tiny", vocab_size=vocab_size, seed=0)

        def drift(mu):
            learner = ClinicalClassificationLearner(
                site_name="s", model_factory=factory, train_data=shard,
                valid_data=None, local_epochs=1, batch_size=16, lr=1e-2,
                fedprox_mu=mu)
            ctx = FLContext()
            ctx.set_prop("current_round", 0)
            learner.initialize(ctx)
            incoming = {k: np.asarray(v)
                        for k, v in learner.model.state_dict().items()}
            result = learner.train(DXO(DataKind.WEIGHTS, data=incoming), ctx)
            return sum(float(np.sum((result.data[k] - incoming[k]) ** 2))
                       for k in incoming) ** 0.5

        assert drift(mu=100.0) < drift(mu=0.0)

    def test_negative_mu_rejected(self, tiny_split, vocab_size):
        train, _ = tiny_split
        with pytest.raises(ValueError):
            ClinicalClassificationLearner(
                site_name="s", model_factory=lambda: None, train_data=train,
                valid_data=None, fedprox_mu=-1.0)
