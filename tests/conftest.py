"""Shared fixtures: tiny datasets, deterministic RNGs, quiet framework logs."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.data import (
    ClassificationDataset,
    CohortSpec,
    EhrTokenizer,
    MlmCollator,
    SequenceDataset,
    encode_cohort,
    generate_cohort,
    train_valid_split,
)
from repro.flare import set_console_level


@pytest.fixture(autouse=True, scope="session")
def _quiet_flare_logs():
    set_console_level(logging.ERROR)
    yield


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_cohort():
    return generate_cohort(CohortSpec(n_patients=240, seed=5))


@pytest.fixture(scope="session")
def tiny_tokenizer(tiny_cohort):
    return EhrTokenizer(tiny_cohort.vocab, max_len=24)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_cohort, tiny_tokenizer) -> ClassificationDataset:
    return encode_cohort(tiny_cohort, tiny_tokenizer)


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    train_idx, valid_idx = train_valid_split(len(tiny_dataset), 0.25, seed=5)
    return tiny_dataset.subset(train_idx), tiny_dataset.subset(valid_idx)


@pytest.fixture(scope="session")
def tiny_sequences(tiny_dataset) -> SequenceDataset:
    return SequenceDataset(tiny_dataset.input_ids, tiny_dataset.attention_mask)


@pytest.fixture(scope="session")
def tiny_collator(tiny_cohort) -> MlmCollator:
    return MlmCollator(tiny_cohort.vocab, seed=5)


@pytest.fixture(scope="session")
def vocab_size(tiny_cohort) -> int:
    return len(tiny_cohort.vocab)
