"""Corpus-built vocabularies and cohort persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    CohortSpec,
    build_vocab_from_corpus,
    generate_cohort,
    load_cohort,
    save_cohort,
)


class TestVocabBuilder:
    def test_frequency_ordering(self):
        vocab = build_vocab_from_corpus(["A B B C C C"])
        tokens = vocab.tokens()[5:]  # skip specials
        assert tokens == ["C", "B", "A"]

    def test_min_freq_filters(self):
        vocab = build_vocab_from_corpus(["A A B"], min_freq=2)
        assert "A" in vocab and "B" not in vocab

    def test_max_size_truncates(self):
        vocab = build_vocab_from_corpus(["A A A B B C"], max_size=2)
        assert "A" in vocab and "B" in vocab and "C" not in vocab

    def test_token_list_records(self):
        vocab = build_vocab_from_corpus([["X", "Y"], ["Y"]])
        assert vocab.tokens()[5:] == ["Y", "X"]

    def test_ties_break_alphabetically(self):
        vocab = build_vocab_from_corpus(["B A"])
        assert vocab.tokens()[5:] == ["A", "B"]

    def test_validation(self):
        with pytest.raises(ValueError):
            build_vocab_from_corpus([], min_freq=0)
        with pytest.raises(ValueError):
            build_vocab_from_corpus(["A"], max_size=0)

    def test_covers_generated_corpus(self):
        from repro.data import generate_pretraining_corpus

        corpus = generate_pretraining_corpus(50, seed=3)
        vocab = build_vocab_from_corpus(corpus)
        for line in corpus:
            for token in line.split():
                assert vocab.token_to_id(token) != vocab.unk_id


class TestCohortPersistence:
    def test_roundtrip(self, tmp_path):
        cohort = generate_cohort(CohortSpec(n_patients=30, seed=9))
        path = save_cohort(cohort, tmp_path / "cohort.jsonl")
        loaded = load_cohort(path)
        assert len(loaded) == 30
        assert loaded.records[0].tokens == cohort.records[0].tokens
        np.testing.assert_array_equal(loaded.labels, cohort.labels)
        assert loaded.spec == cohort.spec

    def test_covariates_survive(self, tmp_path):
        cohort = generate_cohort(CohortSpec(n_patients=10, seed=9))
        loaded = load_cohort(save_cohort(cohort, tmp_path / "c.jsonl"))
        assert loaded.records[3].covariates == cohort.records[3].covariates

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(ValueError, match="header"):
            load_cohort(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_cohort(path)
