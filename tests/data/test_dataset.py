"""Datasets and batching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    ClassificationDataset,
    SequenceDataset,
    encode_cohort,
    train_valid_split,
)


def make_dataset(n=20, seq=6):
    rng = np.random.default_rng(0)
    return ClassificationDataset(
        input_ids=rng.integers(0, 9, size=(n, seq)),
        attention_mask=np.ones((n, seq), dtype=bool),
        labels=rng.integers(0, 2, size=n),
    )


class TestClassificationDataset:
    def test_len(self):
        assert len(make_dataset(13)) == 13

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            ClassificationDataset(np.zeros((3, 4), dtype=np.int64),
                                  np.ones((3, 4), dtype=bool),
                                  np.zeros(2, dtype=np.int64))

    def test_subset(self):
        ds = make_dataset(10)
        sub = ds.subset(np.array([1, 3, 5]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.labels, ds.labels[[1, 3, 5]])

    def test_batches_cover_everything(self):
        ds = make_dataset(10)
        seen = sum(len(labels) for _, _, labels in ds.iter_batches(3))
        assert seen == 10

    def test_drop_last(self):
        ds = make_dataset(10)
        batches = list(ds.iter_batches(3, drop_last=True))
        assert all(len(b[2]) == 3 for b in batches)
        assert len(batches) == 3

    def test_shuffle_changes_order_but_not_content(self):
        ds = make_dataset(32)
        plain = np.concatenate([ids[:, 0] for ids, _, _ in ds.iter_batches(8)])
        shuffled = np.concatenate([
            ids[:, 0] for ids, _, _ in ds.iter_batches(8, shuffle=True,
                                                       rng=np.random.default_rng(1))])
        assert sorted(plain.tolist()) == sorted(shuffled.tolist())
        assert not np.array_equal(plain, shuffled)

    def test_shuffle_deterministic_with_rng(self):
        ds = make_dataset(16)
        a = [l.tolist() for _, _, l in ds.iter_batches(4, shuffle=True,
                                                       rng=np.random.default_rng(5))]
        b = [l.tolist() for _, _, l in ds.iter_batches(4, shuffle=True,
                                                       rng=np.random.default_rng(5))]
        assert a == b

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            list(make_dataset().iter_batches(0))

    def test_positive_rate(self):
        ds = ClassificationDataset(np.zeros((4, 2), dtype=np.int64),
                                   np.ones((4, 2), dtype=bool),
                                   np.array([1, 1, 0, 0]))
        assert ds.positive_rate == 0.5


class TestSequenceDataset:
    def test_batching(self):
        ds = SequenceDataset(np.zeros((7, 4), dtype=np.int64),
                             np.ones((7, 4), dtype=bool))
        sizes = [len(ids) for ids, _ in ds.iter_batches(3)]
        assert sizes == [3, 3, 1]

    def test_subset(self):
        ds = SequenceDataset(np.arange(12).reshape(6, 2),
                             np.ones((6, 2), dtype=bool))
        sub = ds.subset(np.array([0, 5]))
        assert len(sub) == 2


class TestEncodeCohort:
    def test_labels_align(self, tiny_cohort, tiny_tokenizer):
        ds = encode_cohort(tiny_cohort, tiny_tokenizer)
        assert len(ds) == len(tiny_cohort)
        np.testing.assert_array_equal(ds.labels, tiny_cohort.labels)

    def test_cls_first_everywhere(self, tiny_cohort, tiny_tokenizer):
        ds = encode_cohort(tiny_cohort, tiny_tokenizer)
        assert (ds.input_ids[:, 0] == tiny_cohort.vocab.cls_id).all()


class TestSplit:
    def test_disjoint_and_complete(self):
        train, valid = train_valid_split(100, 0.2, seed=1)
        assert len(train) == 80 and len(valid) == 20
        assert not set(train) & set(valid)
        assert set(train) | set(valid) == set(range(100))

    def test_deterministic(self):
        a = train_valid_split(50, 0.3, seed=2)
        b = train_valid_split(50, 0.3, seed=2)
        np.testing.assert_array_equal(a[0], b[0])

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            train_valid_split(10, 0.0)
        with pytest.raises(ValueError):
            train_valid_split(10, 1.0)
