"""EHR tokenizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import EhrTokenizer, Vocabulary


@pytest.fixture()
def vocab():
    return Vocabulary([f"DX_{i}" for i in range(10)] + [f"RX_{i}" for i in range(5)])


def test_layout_cls_body_sep_pad(vocab):
    tok = EhrTokenizer(vocab, max_len=8)
    enc = tok.encode("DX_1 DX_2")
    assert enc.input_ids[0] == vocab.cls_id
    assert enc.input_ids[3] == vocab.sep_id
    assert list(enc.input_ids[4:]) == [vocab.pad_id] * 4
    assert list(enc.attention_mask) == [True] * 4 + [False] * 4


def test_truncation(vocab):
    tok = EhrTokenizer(vocab, max_len=5)
    enc = tok.encode(" ".join(f"DX_{i}" for i in range(10)))
    assert len(enc.input_ids) == 5
    assert enc.input_ids[-1] == vocab.sep_id  # SEP survives truncation
    assert enc.attention_mask.all()


def test_unknown_token_becomes_unk(vocab):
    tok = EhrTokenizer(vocab, max_len=6)
    enc = tok.encode("WAT DX_1")
    assert vocab.unk_id in enc.input_ids


def test_token_list_input(vocab):
    tok = EhrTokenizer(vocab, max_len=6)
    a = tok.encode(["DX_1", "DX_2"])
    b = tok.encode("DX_1 DX_2")
    np.testing.assert_array_equal(a.input_ids, b.input_ids)


def test_encode_batch_shapes(vocab):
    tok = EhrTokenizer(vocab, max_len=7)
    ids, mask = tok.encode_batch(["DX_1", "DX_2 DX_3 RX_0"])
    assert ids.shape == (2, 7) and mask.shape == (2, 7)
    assert mask.dtype == bool and ids.dtype == np.int64


def test_decode_skips_specials(vocab):
    tok = EhrTokenizer(vocab, max_len=8)
    enc = tok.encode("DX_1 RX_0")
    assert tok.decode(enc.input_ids) == ["DX_1", "RX_0"]


def test_decode_keep_specials(vocab):
    tok = EhrTokenizer(vocab, max_len=6)
    enc = tok.encode("DX_1")
    decoded = tok.decode(enc.input_ids, skip_special=False)
    assert decoded[0] == "[CLS]" and "[PAD]" in decoded


def test_roundtrip(vocab):
    tok = EhrTokenizer(vocab, max_len=16)
    codes = ["DX_3", "RX_1", "DX_9"]
    assert tok.decode(tok.encode(codes).input_ids) == codes


def test_max_len_validation(vocab):
    with pytest.raises(ValueError):
        EhrTokenizer(vocab, max_len=2)


def test_mismatched_encoding_arrays_rejected():
    from repro.data import Encoding

    with pytest.raises(ValueError):
        Encoding(input_ids=np.zeros(3, dtype=np.int64),
                 attention_mask=np.zeros(4, dtype=bool))
