"""Synthetic clopidogrel cohort generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    CohortSpec,
    PAPER_COHORT_SIZE,
    PAPER_POSITIVE_COUNT,
    build_clinical_vocab,
    generate_cohort,
    generate_pretraining_corpus,
)
from repro.data.ehr import CLOPIDOGREL, INTERACTING_PPI


class TestCohortStatistics:
    def test_size(self):
        cohort = generate_cohort(CohortSpec(n_patients=500, seed=1))
        assert len(cohort) == 500

    def test_positive_rate_matches_paper(self):
        """Paper: 1,824 failures / 8,638 patients = 21.1%."""
        cohort = generate_cohort(CohortSpec(n_patients=4000, seed=2))
        target = PAPER_POSITIVE_COUNT / PAPER_COHORT_SIZE
        assert abs(cohort.positive_rate - target) < 0.035

    def test_deterministic(self):
        a = generate_cohort(CohortSpec(n_patients=100, seed=3))
        b = generate_cohort(CohortSpec(n_patients=100, seed=3))
        assert a.texts() == b.texts()
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_seed_changes_data(self):
        a = generate_cohort(CohortSpec(n_patients=100, seed=3))
        b = generate_cohort(CohortSpec(n_patients=100, seed=4))
        assert a.texts() != b.texts()

    def test_every_patient_on_clopidogrel(self):
        cohort = generate_cohort(CohortSpec(n_patients=50, seed=5))
        assert all(CLOPIDOGREL in record.tokens for record in cohort.records)

    def test_tokens_in_vocab(self):
        cohort = generate_cohort(CohortSpec(n_patients=100, seed=6))
        for record in cohort.records[:20]:
            for token in record.tokens:
                assert token in cohort.vocab, token


class TestRiskStructure:
    """The label must actually depend on the clinical risk tokens."""

    def test_cyp2c19_lof_raises_failure_rate(self):
        cohort = generate_cohort(CohortSpec(n_patients=4000, seed=7))
        lof = [r.label for r in cohort.records if r.covariates["cyp2c19_lof"]]
        normal = [r.label for r in cohort.records if not r.covariates["cyp2c19_lof"]]
        assert np.mean(lof) > np.mean(normal) + 0.1

    def test_interacting_ppi_raises_failure_rate(self):
        cohort = generate_cohort(CohortSpec(n_patients=4000, seed=7))
        on = [r.label for r in cohort.records if r.covariates["interacting_ppi"]]
        off = [r.label for r in cohort.records if not r.covariates["interacting_ppi"]]
        assert np.mean(on) > np.mean(off) + 0.05

    def test_risk_tokens_present_when_covariate_set(self):
        cohort = generate_cohort(CohortSpec(n_patients=300, seed=8))
        for record in cohort.records:
            if record.covariates["interacting_ppi"]:
                assert any(t in INTERACTING_PPI for t in record.tokens)
            if record.covariates["diabetes"]:
                assert "DX_E11" in record.tokens

    def test_label_noise_bounds_separability(self):
        """With 50% label noise, labels are independent of covariates."""
        noisy = generate_cohort(CohortSpec(n_patients=4000, seed=9, label_noise=0.5,
                                           target_positive_rate=0.5))
        lof = [r.label for r in noisy.records if r.covariates["cyp2c19_lof"]]
        normal = [r.label for r in noisy.records if not r.covariates["cyp2c19_lof"]]
        assert abs(np.mean(lof) - np.mean(normal)) < 0.08


class TestValidation:
    def test_bad_size(self):
        with pytest.raises(ValueError):
            generate_cohort(CohortSpec(n_patients=0))

    def test_record_text_joins_tokens(self):
        cohort = generate_cohort(CohortSpec(n_patients=5, seed=1))
        record = cohort.records[0]
        assert record.text().split() == record.tokens


class TestPretrainingCorpus:
    def test_size_and_determinism(self):
        a = generate_pretraining_corpus(50, seed=1)
        b = generate_pretraining_corpus(50, seed=1)
        assert len(a) == 50 and a == b

    def test_tokens_in_vocab(self):
        vocab = build_clinical_vocab()
        for line in generate_pretraining_corpus(30, seed=2):
            for token in line.split():
                assert token in vocab

    def test_bad_size(self):
        with pytest.raises(ValueError):
            generate_pretraining_corpus(0)
