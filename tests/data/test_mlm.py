"""MLM masking collator (15% selection, 80/10/10 corruption, Sec. III-B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import IGNORE_INDEX, MlmCollator, Vocabulary


@pytest.fixture()
def vocab():
    return Vocabulary([f"TOK_{i}" for i in range(40)])


def big_batch(vocab, n=400, seq=24, seed=0):
    rng = np.random.default_rng(seed)
    ids = rng.integers(5, len(vocab), size=(n, seq))
    ids[:, 0] = vocab.cls_id
    mask = np.ones((n, seq), dtype=bool)
    mask[:, -4:] = False
    ids[:, -4:] = vocab.pad_id
    return ids, mask


class TestSelection:
    def test_selection_rate_close_to_15_percent(self, vocab):
        ids, mask = big_batch(vocab)
        example = MlmCollator(vocab, seed=1)(ids, mask)
        selectable = mask & ~np.isin(ids, vocab.special_ids)
        rate = (example.labels != IGNORE_INDEX).sum() / selectable.sum()
        assert abs(rate - 0.15) < 0.02

    def test_specials_never_selected(self, vocab):
        ids, mask = big_batch(vocab)
        example = MlmCollator(vocab, seed=2)(ids, mask)
        selected = example.labels != IGNORE_INDEX
        assert not selected[:, 0].any()          # [CLS]
        assert not selected[ids == vocab.pad_id].any()

    def test_padding_never_selected(self, vocab):
        ids, mask = big_batch(vocab)
        example = MlmCollator(vocab, seed=3)(ids, mask)
        assert not (example.labels[~mask] != IGNORE_INDEX).any()

    def test_labels_hold_original_ids(self, vocab):
        ids, mask = big_batch(vocab)
        example = MlmCollator(vocab, seed=4)(ids, mask)
        selected = example.labels != IGNORE_INDEX
        np.testing.assert_array_equal(example.labels[selected], ids[selected])


class TestCorruptionSplit:
    def test_80_10_10(self, vocab):
        ids, mask = big_batch(vocab, n=2000)
        example = MlmCollator(vocab, seed=5)(ids, mask)
        selected = example.labels != IGNORE_INDEX
        corrupted = example.input_ids[selected]
        original = ids[selected]
        frac_mask = (corrupted == vocab.mask_id).mean()
        frac_kept = (corrupted == original).mean()
        assert abs(frac_mask - 0.80) < 0.03
        # 10% kept + ~10%·(1/V) random collisions
        assert abs(frac_kept - 0.10) < 0.03

    def test_kept_tokens_still_in_loss(self, vocab):
        """The paper's regularisation: unmasked selected tokens keep labels."""
        ids, mask = big_batch(vocab, n=2000)
        example = MlmCollator(vocab, seed=6)(ids, mask)
        selected = example.labels != IGNORE_INDEX
        kept = selected & (example.input_ids == ids)
        assert kept.sum() > 0
        assert (example.labels[kept] == ids[kept]).all()

    def test_unselected_positions_untouched(self, vocab):
        ids, mask = big_batch(vocab)
        example = MlmCollator(vocab, seed=7)(ids, mask)
        unselected = example.labels == IGNORE_INDEX
        np.testing.assert_array_equal(example.input_ids[unselected], ids[unselected])

    def test_original_arrays_not_modified(self, vocab):
        ids, mask = big_batch(vocab)
        before = ids.copy()
        MlmCollator(vocab, seed=8)(ids, mask)
        np.testing.assert_array_equal(ids, before)


class TestConfig:
    def test_deterministic_given_seed(self, vocab):
        ids, mask = big_batch(vocab, n=20)
        a = MlmCollator(vocab, seed=9)(ids, mask)
        b = MlmCollator(vocab, seed=9)(ids, mask)
        np.testing.assert_array_equal(a.input_ids, b.input_ids)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_bad_mask_prob(self, vocab):
        with pytest.raises(ValueError):
            MlmCollator(vocab, mask_prob=0.0)
        with pytest.raises(ValueError):
            MlmCollator(vocab, mask_prob=1.0)

    def test_bad_fractions(self, vocab):
        with pytest.raises(ValueError):
            MlmCollator(vocab, replace_mask_frac=0.9, replace_random_frac=0.2)

    def test_custom_mask_prob(self, vocab):
        ids, mask = big_batch(vocab, n=1000)
        example = MlmCollator(vocab, mask_prob=0.4, seed=10)(ids, mask)
        selectable = mask & ~np.isin(ids, vocab.special_ids)
        rate = (example.labels != IGNORE_INDEX).sum() / selectable.sum()
        assert abs(rate - 0.4) < 0.03
