"""Vocabulary."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import CLS, MASK, PAD, SEP, SPECIAL_TOKENS, UNK, Vocabulary

token_strategy = st.text(alphabet=st.characters(whitelist_categories=("Lu", "Nd")),
                         min_size=1, max_size=8)


class TestBasics:
    def test_specials_come_first(self):
        vocab = Vocabulary(["A", "B"])
        assert vocab.tokens()[:5] == list(SPECIAL_TOKENS)
        assert vocab.pad_id == 0

    def test_pad_is_zero(self):
        assert Vocabulary([]).token_to_id(PAD) == 0

    def test_all_special_ids_distinct(self):
        vocab = Vocabulary([])
        ids = {vocab.pad_id, vocab.cls_id, vocab.sep_id, vocab.mask_id, vocab.unk_id}
        assert len(ids) == 5

    def test_duplicates_collapsed(self):
        vocab = Vocabulary(["A", "A", "B"])
        assert len(vocab) == len(SPECIAL_TOKENS) + 2

    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary(["A"])
        assert vocab.token_to_id("ZZZ") == vocab.unk_id

    def test_contains(self):
        vocab = Vocabulary(["A"])
        assert "A" in vocab and MASK in vocab and "Q" not in vocab

    def test_id_out_of_range(self):
        with pytest.raises(IndexError):
            Vocabulary([]).id_to_token(999)

    def test_encode_decode_lists(self):
        vocab = Vocabulary(["A", "B"])
        ids = vocab.encode_tokens(["A", "B", "A"])
        assert vocab.decode_ids(ids) == ["A", "B", "A"]

    def test_equality(self):
        assert Vocabulary(["A"]) == Vocabulary(["A"])
        assert Vocabulary(["A"]) != Vocabulary(["B"])


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        vocab = Vocabulary(["DX_1", "RX_2"])
        path = vocab.save(tmp_path / "vocab.json")
        assert Vocabulary.load(path) == vocab

    def test_load_rejects_corrupt_specials(self, tmp_path):
        path = tmp_path / "vocab.json"
        path.write_text('["nope", "q"]')
        with pytest.raises(ValueError):
            Vocabulary.load(path)


@settings(max_examples=40, deadline=None)
@given(st.lists(token_strategy, max_size=20))
def test_roundtrip_property(tokens):
    vocab = Vocabulary(tokens)
    for token in tokens:
        if token in SPECIAL_TOKENS:
            continue
        assert vocab.id_to_token(vocab.token_to_id(token)) == token


@settings(max_examples=40, deadline=None)
@given(st.lists(token_strategy, min_size=1, max_size=20))
def test_ids_are_dense(tokens):
    vocab = Vocabulary(tokens)
    all_ids = [vocab.token_to_id(t) for t in vocab.tokens()]
    assert sorted(all_ids) == list(range(len(vocab)))
