"""Client partitioners (paper's imbalanced ratios, balanced, label-skew)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    PAPER_IMBALANCED_RATIOS,
    partition_balanced,
    partition_by_ratios,
    partition_label_skew,
    small_subset,
)


class TestPaperRatios:
    def test_ratios_sum_to_one(self):
        assert abs(sum(PAPER_IMBALANCED_RATIOS) - 1.0) < 1e-9

    def test_eight_clients(self):
        assert len(PAPER_IMBALANCED_RATIOS) == 8

    def test_descending(self):
        assert list(PAPER_IMBALANCED_RATIOS) == sorted(PAPER_IMBALANCED_RATIOS,
                                                       reverse=True)


class TestPartitionByRatios:
    def test_disjoint_and_complete(self):
        shards = partition_by_ratios(1000)
        combined = np.concatenate(shards)
        assert len(combined) == 1000
        assert len(np.unique(combined)) == 1000

    def test_sizes_follow_ratios(self):
        shards = partition_by_ratios(10_000)
        sizes = np.array([len(s) for s in shards]) / 10_000
        np.testing.assert_allclose(sizes, PAPER_IMBALANCED_RATIOS, atol=0.005)

    def test_no_empty_shards_small_n(self):
        shards = partition_by_ratios(20)
        assert all(len(s) >= 1 for s in shards)

    def test_deterministic(self):
        a = partition_by_ratios(100, seed=3)
        b = partition_by_ratios(100, seed=3)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_too_few_items(self):
        with pytest.raises(ValueError):
            partition_by_ratios(4)

    def test_bad_ratio(self):
        with pytest.raises(ValueError):
            partition_by_ratios(100, ratios=(0.5, 0.0, 0.5))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(16, 2000), st.integers(0, 10_000))
    def test_property_partition_is_exact(self, n, seed):
        shards = partition_by_ratios(n, seed=seed)
        combined = np.sort(np.concatenate(shards))
        np.testing.assert_array_equal(combined, np.arange(n))


class TestPartitionBalanced:
    def test_near_equal_sizes(self):
        shards = partition_balanced(100, 8)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_complete(self):
        shards = partition_balanced(101, 8)
        assert len(np.unique(np.concatenate(shards))) == 101

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_balanced(3, 8)
        with pytest.raises(ValueError):
            partition_balanced(10, 0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(8, 500), st.integers(1, 8))
    def test_property_balanced_exact(self, n, k):
        shards = partition_balanced(n, k)
        assert sum(len(s) for s in shards) == n
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1


class TestLabelSkew:
    def test_complete(self):
        labels = np.random.default_rng(0).integers(0, 2, size=300)
        shards = partition_label_skew(labels, 4, alpha=0.5, seed=1)
        assert sum(len(s) for s in shards) == 300

    def test_small_alpha_skews_more(self):
        labels = np.random.default_rng(0).integers(0, 2, size=2000)

        def skew(alpha):
            shards = partition_label_skew(labels, 4, alpha=alpha, seed=2)
            rates = [labels[s].mean() for s in shards if len(s) > 10]
            return np.std(rates)

        assert skew(0.1) > skew(100.0)

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            partition_label_skew(np.zeros(10), 2, alpha=0.0)


class TestSmallSubset:
    def test_default_two_percent(self):
        subset = small_subset(10_000, seed=1)
        assert len(subset) == 200

    def test_minimum_enforced(self):
        assert len(small_subset(100, fraction=0.01, minimum=8)) == 8

    def test_never_exceeds_n(self):
        assert len(small_subset(5, fraction=1.0, minimum=10)) == 5

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            small_subset(10, fraction=0.0)
