#!/usr/bin/env python
"""Federated BERT pretraining with the masked-language-model objective.

Reproduces the Fig. 2 workflow at a small scale: the same BERT encoder is
pretrained under four data regimes (centralized, small dataset, federated
imbalanced, federated balanced) and the MLM loss trajectories are compared.
Then the pretrained encoder is transferred into a classifier — the
"BERT pretraining broadens applicability" contribution of the paper.

Run:  python examples/pretrain_mlm.py
"""

from __future__ import annotations

import logging

import numpy as np

from repro.data import (
    CohortSpec,
    EhrTokenizer,
    MlmCollator,
    SequenceDataset,
    build_clinical_vocab,
    encode_cohort,
    generate_cohort,
    generate_pretraining_corpus,
    partition_balanced,
    train_valid_split,
)
from repro.experiments import ascii_plot, format_series
from repro.flare import set_console_level
from repro.models import BertConfig, BertForMaskedLM, BertForSequenceClassification
from repro.training import (
    TrainConfig,
    evaluate_classifier,
    run_centralized_mlm,
    run_federated_mlm,
    train_classifier,
)

SEQ_LEN = 32
EPOCHS = 4


def main() -> None:
    set_console_level(logging.WARNING)
    vocab = build_clinical_vocab()
    tokenizer = EhrTokenizer(vocab, max_len=SEQ_LEN)
    collator = MlmCollator(vocab, mask_prob=0.15, seed=11)
    print(f"vocabulary: {len(vocab)} medical codes; "
          f"MLM masking p=0.15 with the 80/10/10 corruption split")

    # corpus ------------------------------------------------------------------
    corpus = generate_pretraining_corpus(1_600, seed=11)
    ids, mask = tokenizer.encode_batch(corpus)
    train = SequenceDataset(ids[:1_400], mask[:1_400])
    valid = SequenceDataset(ids[1_400:], mask[1_400:])

    config = BertConfig(vocab_size=len(vocab), hidden_dim=32, num_heads=2,
                        num_layers=2, max_seq_len=SEQ_LEN, dropout=0.1)

    def factory():
        return BertForMaskedLM(config, rng=np.random.default_rng(0))

    # regime 1: centralized ----------------------------------------------------
    print("\npretraining (centralized) ...")
    central = run_centralized_mlm(factory, train, valid, collator,
                                  epochs=EPOCHS, lr=1e-3)
    central_curve = [m.valid_loss for m in central]

    # regime 2: small dataset ----------------------------------------------------
    print("pretraining (small dataset, 2% of the corpus) ...")
    small = run_centralized_mlm(factory, train.subset(np.arange(32)), valid,
                                collator, epochs=EPOCHS, lr=1e-3)
    small_curve = [m.valid_loss for m in small]

    # regime 3: federated over 8 balanced sites -------------------------------
    print("pretraining (federated, 8 balanced sites) ...")
    shards = {f"site-{i + 1}": train.subset(s)
              for i, s in enumerate(partition_balanced(len(train), 8, seed=11))}
    fl_curve, _sim = run_federated_mlm(factory, shards, valid, collator,
                                       num_rounds=EPOCHS, local_epochs=1, lr=1e-3)

    print()
    print(format_series("centralized ", central_curve))
    print(format_series("small (2%)  ", small_curve))
    print(format_series("federated   ", fl_curve))
    print()
    print(ascii_plot({"centralized": central_curve, "small": small_curve,
                      "federated": fl_curve},
                     title="MLM validation loss (cf. paper Fig. 2)"))

    # transfer: pretrain → fine-tune -------------------------------------------
    print("\ntransferring the federated-pretrained encoder into a classifier ...")
    pretrained = factory()
    # re-run one federated round to get weights (use last round's state dict)
    cohort = generate_cohort(CohortSpec(n_patients=600, seed=7))
    dataset = encode_cohort(cohort, EhrTokenizer(cohort.vocab, max_len=SEQ_LEN))
    train_idx, valid_idx = train_valid_split(len(dataset), 0.2, seed=7)
    clf_train, clf_valid = dataset.subset(train_idx), dataset.subset(valid_idx)

    scratch = BertForSequenceClassification(config, rng=np.random.default_rng(1))
    warm = BertForSequenceClassification(config, rng=np.random.default_rng(1))
    warm.load_encoder_weights(pretrained.encoder_state_dict())

    for name, model in [("from scratch", scratch), ("pretrained encoder", warm)]:
        train_classifier(model, clf_train, TrainConfig(epochs=3, lr=1e-3))
        accuracy, _ = evaluate_classifier(model, clf_valid)
        print(f"  fine-tuned {name}: top-1 accuracy {100 * accuracy:.1f}%")


if __name__ == "__main__":
    main()
