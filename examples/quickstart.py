#!/usr/bin/env python
"""Quickstart: federated training of a clinical ADR classifier in ~a minute.

Walks the whole pipeline end to end at a small scale:

1. generate a synthetic clopidogrel cohort (the paper's dataset proxy),
2. tokenize and split it across 8 clinics with the paper's imbalanced ratios,
3. provision an NVFlare-style project and run ScatterAndGather rounds,
4. compare the federated model against centralized and standalone baselines.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import logging

from repro.data import (
    CohortSpec,
    EhrTokenizer,
    PAPER_IMBALANCED_RATIOS,
    encode_cohort,
    generate_cohort,
    partition_by_ratios,
    train_valid_split,
)
from repro.experiments import PAPER_PARAMETERS, TABLE2_MODELS, format_table
from repro.flare import set_console_level
from repro.models import build_classifier
from repro.training import run_centralized, run_federated, run_standalone


def main() -> None:
    set_console_level(logging.WARNING)  # keep the console output readable

    print("Paper parameters (Table I):",
          {k: PAPER_PARAMETERS[k] for k in ("num_clients", "optimizer", "learning_rate")})
    print("Model presets (Table II):", TABLE2_MODELS)
    print()

    # 1. data ---------------------------------------------------------------
    cohort = generate_cohort(CohortSpec(n_patients=800, seed=7))
    print(f"cohort: {len(cohort)} patients, "
          f"{cohort.positive_rate:.1%} treatment-failure rate "
          f"(paper: 1,824/8,638 = 21.1%)")
    tokenizer = EhrTokenizer(cohort.vocab, max_len=32)
    dataset = encode_cohort(cohort, tokenizer)
    train_idx, valid_idx = train_valid_split(len(dataset), 0.2, seed=7)
    train, valid = dataset.subset(train_idx), dataset.subset(valid_idx)

    # 2. the paper's 8-client imbalanced split ------------------------------
    shards = {f"site-{i + 1}": train.subset(indices)
              for i, indices in enumerate(partition_by_ratios(
                  len(train), PAPER_IMBALANCED_RATIOS, seed=7))}
    print("client shard sizes:", {name: len(s) for name, s in shards.items()})
    print()

    # 3. train under the three schemes ---------------------------------------
    def factory():
        return build_classifier("lstm-tiny", vocab_size=len(cohort.vocab), seed=3)

    print("running centralized baseline ...")
    central = run_centralized(factory, train, valid, epochs=6, lr=1e-2)
    print("running standalone baseline (8 isolated sites) ...")
    alone = run_standalone(factory, shards, valid, epochs=6, lr=1e-2)
    print("running federated training (ScatterAndGather, 6 rounds) ...")
    federated = run_federated(factory, shards, valid, num_rounds=6,
                              local_epochs=1, lr=1e-2, job_name="quickstart")

    # 4. report ---------------------------------------------------------------
    print()
    print(format_table(
        ["scheme", "top-1 accuracy [%]"],
        [["centralized", f"{100 * central.best_acc:.1f}"],
         ["standalone (mean of sites)", f"{100 * alone.mean_acc:.1f}"],
         ["federated (FL)", f"{100 * federated.best_acc:.1f}"]],
        title="Quickstart result (cf. paper Table III shape)"))
    print()
    stats = federated.simulation.stats
    print(f"federated run: {stats.num_rounds} rounds, "
          f"{stats.messages_delivered} signed messages, "
          f"{stats.bytes_delivered / 1e6:.1f} MB moved, "
          f"{stats.mean_seconds_per_local_epoch():.2f} s/local-train call")
    print("issued join tokens:",
          {k: v[:13] + "..." for k, v in sorted(federated.simulation.tokens.items())[:3]})


if __name__ == "__main__":
    main()
