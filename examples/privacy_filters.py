#!/usr/bin/env python
"""Privacy filters on the client → server path.

NVFlare jobs can declare filter chains on task results; this example runs
the same federated job with (a) no filter, (b) Gaussian noise, and
(c) percentile clipping + norm capping, then compares accuracy — the
privacy/utility trade-off, plus a demonstration of ExcludeVars keeping the
site-specific classification head local.

Run:  python examples/privacy_filters.py
"""

from __future__ import annotations

import logging

from repro.data import (
    CohortSpec,
    EhrTokenizer,
    encode_cohort,
    generate_cohort,
    partition_balanced,
    train_valid_split,
)
from repro.experiments import format_table
from repro.flare import (
    ExcludeVars,
    FilterChain,
    GaussianPrivacy,
    NormClipPrivacy,
    PercentilePrivacy,
    set_console_level,
)
from repro.models import build_classifier
from repro.training import run_federated


def main() -> None:
    set_console_level(logging.WARNING)
    cohort = generate_cohort(CohortSpec(n_patients=640, seed=7))
    dataset = encode_cohort(cohort, EhrTokenizer(cohort.vocab, max_len=32))
    train_idx, valid_idx = train_valid_split(len(dataset), 0.2, seed=7)
    train, valid = dataset.subset(train_idx), dataset.subset(valid_idx)
    shards = {f"site-{i + 1}": train.subset(s)
              for i, s in enumerate(partition_balanced(len(train), 4, seed=7))}

    def factory():
        return build_classifier("lstm-tiny", vocab_size=len(cohort.vocab), seed=3)

    chains = {
        "no filter": [],
        "gaussian sigma0=0.05": [GaussianPrivacy(sigma0=0.05, seed=0)],
        "gaussian sigma0=0.5": [GaussianPrivacy(sigma0=0.5, seed=0)],
        "percentile 10 + norm cap": [FilterChain([
            PercentilePrivacy(percentile=10.0),
            NormClipPrivacy(max_norm=50.0)])],
    }

    rows = []
    for name, filters in chains.items():
        print(f"running federated job with filter: {name} ...")
        result = run_federated(factory, shards, valid, num_rounds=4,
                               local_epochs=1, lr=1e-2,
                               job_name=f"privacy-{name.split()[0]}",
                               task_result_filters=filters)
        rows.append([name, f"{100 * result.best_acc:.1f}"])

    print()
    print(format_table(["client-side result filter", "best top-1 acc [%]"],
                       rows, title="Privacy/utility trade-off"))

    # ExcludeVars: keep the head local, share only the encoder ----------------
    print("\nExcludeVars demo: sharing everything except the classifier head")
    result = run_federated(factory, shards, valid, num_rounds=2, local_epochs=1,
                           lr=1e-2, job_name="privacy-exclude",
                           task_result_filters=[ExcludeVars(["classifier.*"])])
    sent = result.simulation.final_weights
    print(f"  parameters in the aggregated global model: {len(sent)} "
          f"(classifier.* kept on-site)")
    assert not any(key.startswith("classifier.") for key in sent)


if __name__ == "__main__":
    main()
