#!/usr/bin/env python
"""Regenerate every paper artifact in one run: Table III, Fig. 2, Fig. 3.

Scale is controlled by REPRO_SCALE (smoke | bench | paper); default bench.

Run:  REPRO_SCALE=smoke python examples/full_evaluation.py
"""

from __future__ import annotations

import time

from repro.experiments import get_scale, run_fig2, run_fig3, run_table3


def main() -> None:
    scale = get_scale()
    print(f"scale: {scale.name} (cohort={scale.cohort_size}, "
          f"rounds={scale.num_rounds}x{scale.local_epochs}, "
          f"models={scale.models})")

    started = time.time()
    print("\n=== Table III ===")
    table3 = run_table3(scale=scale)
    print(table3.to_text())
    for check, ok in table3.shape_checks().items():
        print(f"  [{'x' if ok else ' '}] {check}")

    print("\n=== Fig. 2 ===")
    fig2 = run_fig2(scale=scale)
    print(fig2.to_text())
    for check, ok in fig2.shape_checks().items():
        print(f"  [{'x' if ok else ' '}] {check}")

    print("\n=== Fig. 3 ===")
    fig3 = run_fig3(scale=scale)
    print(fig3.to_text())
    print("\ntranscript excerpt:")
    for line in fig3.transcript.splitlines()[:12]:
        print(" ", line)

    print(f"\ntotal: {time.time() - started:.0f}s")


if __name__ == "__main__":
    main()
