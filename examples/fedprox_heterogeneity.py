#!/usr/bin/env python
"""FedProx vs plain FedAvg on heavily non-IID (label-skewed) clinics.

The paper's imbalanced split skews shard *sizes*; real multi-site clinical
data also skews *case mix*.  This example partitions the cohort with a
Dirichlet label-skew (some clinics see mostly ADR cases, others almost
none), where plain FedAvg suffers from client drift, and compares it with
the FedProx proximal term (mu > 0) built into the classification learner.

Run:  python examples/fedprox_heterogeneity.py
"""

from __future__ import annotations

import logging

import numpy as np

from repro.data import (
    CohortSpec,
    EhrTokenizer,
    encode_cohort,
    generate_cohort,
    partition_label_skew,
    train_valid_split,
)
from repro.experiments import format_table
from repro.flare import set_console_level
from repro.models import build_classifier
from repro.training import run_federated


def main() -> None:
    set_console_level(logging.WARNING)
    cohort = generate_cohort(CohortSpec(n_patients=800, seed=7))
    dataset = encode_cohort(cohort, EhrTokenizer(cohort.vocab, max_len=32))
    train_idx, valid_idx = train_valid_split(len(dataset), 0.2, seed=7)
    train, valid = dataset.subset(train_idx), dataset.subset(valid_idx)

    shard_indices = partition_label_skew(train.labels, n_clients=4, alpha=0.3,
                                         seed=7)
    shards = {f"site-{i + 1}": train.subset(s)
              for i, s in enumerate(shard_indices)}
    print("site positive rates (label-skewed clinics):",
          {name: round(shard.positive_rate, 2) for name, shard in shards.items()})

    positive = train.positive_rate
    class_weights = np.array([1.0, (1.0 - positive) / positive])

    def factory():
        return build_classifier("lstm-tiny", vocab_size=len(cohort.vocab), seed=3)

    rows = []
    for mu in (0.0, 0.01, 0.1):
        label = "FedAvg" if mu == 0.0 else f"FedProx mu={mu}"
        print(f"running {label} ...")
        result = run_federated(factory, shards, valid, num_rounds=6,
                               local_epochs=2, lr=5e-3, seed=7,
                               job_name=f"fedprox-{mu}",
                               class_weights=class_weights, fedprox_mu=mu)
        history = result.simulation.stats.global_metric_history("valid_acc")
        rows.append([label, f"{100 * result.best_acc:.1f}",
                     " ".join(f"{100 * v:.0f}" for v in history)])

    print()
    print(format_table(
        ["aggregation", "best top-1 acc [%]", "round-by-round acc"],
        rows, title="Client drift under label skew: FedAvg vs FedProx"))


if __name__ == "__main__":
    main()
