#!/usr/bin/env python
"""Cross-site model evaluation after federated training.

After the ScatterAndGather rounds, the server coordinates a validation round
in which every site scores (a) the final global model and (b) each site's
locally-trained standalone model on its own validation shard — NVFlare's
CrossSiteModelEval workflow.  The resulting model × site matrix shows why
federation helps: standalone models score well at home and poorly elsewhere,
while the global model is uniformly strong.

Run:  python examples/cross_site_validation.py
"""

from __future__ import annotations

import logging

import numpy as np

from repro.data import (
    CohortSpec,
    EhrTokenizer,
    encode_cohort,
    generate_cohort,
    partition_label_skew,
    train_valid_split,
)
from repro.experiments import format_table
from repro.flare import (
    CrossSiteModelEval,
    FederatedClient,
    FLServer,
    InTimeAccumulateWeightedAggregator,
    MessageBus,
    Provisioner,
    ScatterAndGather,
    default_project,
    set_console_level,
)
from repro.models import build_classifier
from repro.training import ClinicalClassificationLearner, TrainConfig, train_classifier

N_CLIENTS = 4


def main() -> None:
    set_console_level(logging.WARNING)
    cohort = generate_cohort(CohortSpec(n_patients=800, seed=7))
    dataset = encode_cohort(cohort, EhrTokenizer(cohort.vocab, max_len=32))
    train_idx, valid_idx = train_valid_split(len(dataset), 0.2, seed=7)
    train, valid = dataset.subset(train_idx), dataset.subset(valid_idx)

    # label-skewed shards: sites see different case mixes (non-IID clinics)
    shard_indices = partition_label_skew(train.labels, N_CLIENTS, alpha=0.4, seed=7)
    # per-site validation data: skew the global valid set the same way
    valid_indices = partition_label_skew(valid.labels, N_CLIENTS, alpha=0.4, seed=8)
    shards = {f"site-{i + 1}": train.subset(s) for i, s in enumerate(shard_indices)}
    site_valid = {f"site-{i + 1}": valid.subset(s) for i, s in enumerate(valid_indices)}
    print("site training positive rates:",
          {name: round(s.positive_rate, 2) for name, s in shards.items()})

    def factory():
        return build_classifier("lstm-tiny", vocab_size=len(cohort.vocab), seed=3)

    # federation ---------------------------------------------------------------
    project = default_project(n_clients=N_CLIENTS, name="xsite")
    kits = Provisioner(project, seed=0, key_bits=512).provision()
    bus = MessageBus()
    server = FLServer(kits["server"], bus, seed=0)
    clients = []
    for spec in project.clients:
        learner = ClinicalClassificationLearner(
            site_name=spec.name, model_factory=factory,
            train_data=shards[spec.name], valid_data=site_valid[spec.name],
            local_epochs=2, batch_size=32, lr=1e-2)
        client = FederatedClient(kits[spec.name], learner, bus)
        client.register(server)
        client.serve_in_thread()
        clients.append(client)

    controller = ScatterAndGather(
        server=server, client_names=[c.name for c in clients],
        initial_weights=factory().state_dict(),
        aggregator=InTimeAccumulateWeightedAggregator(), num_rounds=4)

    try:
        print("federated training ...")
        controller.run()

        # standalone models per site --------------------------------------------
        models: dict[str, dict[str, np.ndarray]] = {
            "global (FL)": controller.global_weights}
        for name, shard in shards.items():
            local = factory()
            train_classifier(local, shard, TrainConfig(epochs=8, lr=1e-2))
            models[f"{name} standalone"] = local.state_dict()

        # cross-site validation ---------------------------------------------------
        print("cross-site validation ...")
        workflow = CrossSiteModelEval(server, [c.name for c in clients])
        results = workflow.evaluate(models)
    finally:
        server.stop_clients([c.name for c in clients])
        for client in clients:
            client.stop()

    model_names, sites, matrix = CrossSiteModelEval.as_matrix(results)
    rows = [[model] + [f"{100 * matrix[i, j]:.1f}" for j in range(len(sites))]
            + [f"{100 * np.nanmean(matrix[i]):.1f}"]
            for i, model in enumerate(model_names)]
    print()
    print(format_table(["model \\ evaluated at"] + sites + ["mean"], rows,
                       title="Cross-site top-1 accuracy [%]"))
    global_row = model_names.index("global (FL)")
    print(f"\nglobal model mean accuracy: {100 * np.nanmean(matrix[global_row]):.1f}% "
          f"— uniformly strong across sites; standalone models degrade off-site.")


if __name__ == "__main__":
    main()
