#!/usr/bin/env python
"""The paper's Fig. 3 demonstration: BERT fine-tuning on 8 simulated sites.

Shows the raw framework API (no scheme helpers): provisioning, the token
handshake, threaded clients, the ScatterAndGather controller, and the
captured NVFlare-style transcript.

Run:  python examples/federated_finetune.py
"""

from __future__ import annotations

import numpy as np

from repro.data import (
    CohortSpec,
    EhrTokenizer,
    PAPER_IMBALANCED_RATIOS,
    encode_cohort,
    generate_cohort,
    partition_by_ratios,
    train_valid_split,
)
from repro.flare import (
    FederatedClient,
    FLServer,
    FullModelShareableGenerator,
    InTimeAccumulateWeightedAggregator,
    MessageBus,
    ModelPersistor,
    Provisioner,
    ScatterAndGather,
    default_project,
)
from repro.models import build_classifier
from repro.training import ClinicalClassificationLearner, evaluate_classifier

N_CLIENTS = 8
ROUNDS = 3
LOCAL_EPOCHS = 2


def main() -> None:
    # data -----------------------------------------------------------------
    cohort = generate_cohort(CohortSpec(n_patients=640, seed=7))
    tokenizer = EhrTokenizer(cohort.vocab, max_len=32)
    dataset = encode_cohort(cohort, tokenizer)
    train_idx, valid_idx = train_valid_split(len(dataset), 0.2, seed=7)
    train, valid = dataset.subset(train_idx), dataset.subset(valid_idx)
    shards = dict(zip(
        (f"site-{i}" for i in range(1, N_CLIENTS + 1)),
        (train.subset(s) for s in partition_by_ratios(
            len(train), PAPER_IMBALANCED_RATIOS, seed=7))))

    def model_factory():
        return build_classifier("bert-tiny", vocab_size=len(cohort.vocab),
                                seed=3, max_seq_len=32)

    # 1. provision (Fig. 1: "NVFlare provision") -----------------------------
    project = default_project(n_clients=N_CLIENTS, name="fig3-demo")
    kits = Provisioner(project, seed=0, key_bits=512).provision()
    print(f"provisioned project {project.name!r}: "
          f"{len(kits)} startup kits issued by {kits['server'].project_name}-ca")

    # 2. server + clients with the token handshake ---------------------------
    bus = MessageBus()
    server = FLServer(kits["server"], bus, seed=0)
    clients = []
    for spec in project.clients:
        learner = ClinicalClassificationLearner(
            site_name=spec.name, model_factory=model_factory,
            train_data=shards[spec.name], valid_data=valid,
            local_epochs=LOCAL_EPOCHS, batch_size=32, lr=1e-2)
        client = FederatedClient(kits[spec.name], learner, bus)
        token = client.register(server)
        print(f"  {spec.name} registered, token {token[:18]}...")
        client.serve_in_thread()
        clients.append(client)

    # 3. the ScatterAndGather workflow ---------------------------------------
    eval_model = model_factory()

    def evaluator(weights):
        eval_model.load_state_dict({k: np.asarray(v) for k, v in weights.items()},
                                   strict=False)
        accuracy, loss = evaluate_classifier(eval_model, valid)
        return {"valid_acc": accuracy, "valid_loss": loss}

    controller = ScatterAndGather(
        server=server,
        client_names=[c.name for c in clients],
        initial_weights=model_factory().state_dict(),
        aggregator=InTimeAccumulateWeightedAggregator(),
        shareable_generator=FullModelShareableGenerator(),
        persistor=ModelPersistor("runs/fig3-demo"),
        num_rounds=ROUNDS,
        evaluator=evaluator,
    )
    try:
        stats = controller.run()
    finally:
        server.stop_clients([c.name for c in clients])
        for client in clients:
            client.stop()

    # 4. results --------------------------------------------------------------
    print()
    for record in stats.rounds:
        print(f"round {record.round_number}: "
              f"global valid_acc={record.global_metrics['valid_acc']:.3f}, "
              f"{len(record.client_records)} contributions, "
              f"{record.seconds:.1f}s")
    print(f"\nmean local-train time: "
          f"{stats.mean_seconds_per_local_epoch() / LOCAL_EPOCHS:.2f} s/epoch "
          f"(paper: 12.7 s on GPU at full scale)")
    print(f"transport: {stats.messages_delivered} messages, "
          f"{stats.bytes_delivered / 1e6:.1f} MB")


if __name__ == "__main__":
    main()
