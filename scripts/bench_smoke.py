#!/usr/bin/env python
"""Abbreviated parallel-training A/B: serial fabric vs the shm worker pool.

Runs the same 2-round federated bert-mini MLM job in strictly interleaved
pairs — serial (threaded clients on the in-memory bus), then the persistent
shared-memory worker pool (``transport="shm"``), then serial again, ... —
and then:

1. asserts the final global checkpoints are **bit-identical** across every
   run (a speedup against a run that computed something different is
   meaningless);
2. writes ``BENCH_pr<N>.json`` with per-pair wall-clock times, the
   min/median speedup, and the machine context (core count, BLAS pool,
   active array backend) so a 1-core CI ratio cannot be misread as the
   architecture's ceiling;
3. registers the report plus both run dirs in the run registry and diffs
   pool against serial on the *deterministic* dimensions only
   (``round_bytes``, ``alerts``) — exit 2 if the fabrics diverge.  (The
   pool's live registry counts parent-sent traffic only — children's
   counters are fork-private until the telemetry merge — so its
   ``round_bytes`` reads *lower* than serial by a fixed accounting factor;
   the gate still catches the regression direction: duplicated traffic or
   resend storms push it up.)

The measurement protocol is documented in "Measuring parallel rounds" in
``docs/PERFORMANCE.md``.  CI runs this as the ``bench-smoke`` job.

Usage::

    python scripts/bench_smoke.py --run-dir runs/bench-smoke
    BENCH_PR=7 python scripts/bench_smoke.py --run-dir /tmp/bs --pairs 3
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.autograd import blas_thread_info, get_backend  # noqa: E402
from repro.autograd.backend import active_backend  # noqa: E402
from repro.data import (  # noqa: E402
    CohortSpec,
    EhrTokenizer,
    MlmCollator,
    SequenceDataset,
    encode_cohort,
    generate_cohort,
    partition_balanced,
)
from repro.flare import FLJob, SimulatorRunner  # noqa: E402
from repro.models import build_mlm_model  # noqa: E402
from repro.obs import HealthMonitor  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.training import MlmPretrainLearner  # noqa: E402


def build_job(model_name: str, rounds: int, clients: int) -> FLJob:
    """A small but *real* federated MLM job on a synthetic EHR cohort."""
    cohort = generate_cohort(CohortSpec(n_patients=240, seed=5))
    tokenizer = EhrTokenizer(cohort.vocab, max_len=24)
    dataset = encode_cohort(cohort, tokenizer)
    sequences = SequenceDataset(dataset.input_ids, dataset.attention_mask)
    shard_indices = partition_balanced(len(sequences), clients, seed=0)
    shards = {f"site-{i + 1}": sequences.subset(s)
              for i, s in enumerate(shard_indices)}
    site_seeds = {name: 100 + i for i, name in enumerate(sorted(shards))}
    vocab_size = len(cohort.vocab)

    def model_factory():
        return build_mlm_model(model_name, vocab_size=vocab_size, seed=0,
                               max_seq_len=24)

    def learner_factory(client_name: str) -> MlmPretrainLearner:
        # per-site collator: its masking RNG advances per call, so sharing
        # one would tie the masks to scheduling instead of the seed
        collator = MlmCollator(cohort.vocab, seed=site_seeds[client_name])
        return MlmPretrainLearner(
            site_name=client_name, model_factory=model_factory,
            train_data=shards[client_name], collator=collator,
            local_epochs=1, batch_size=16, lr=1e-3,
            seed=site_seeds[client_name])

    return FLJob(name="bench-smoke",
                 initial_weights=model_factory().state_dict(),
                 learner_factory=learner_factory, num_rounds=rounds,
                 min_clients=clients, result_timeout=300.0)


def run_once(job: FLJob, transport: str, run_dir: Path, clients: int):
    # the health monitor makes the run dir self-describing (stats.json +
    # health.jsonl) for the registry diff below; it arms on both sides, so
    # its overhead cancels out of the A/B ratio
    start = time.perf_counter()
    result = SimulatorRunner(job, n_clients=clients, seed=7, run_dir=run_dir,
                             transport=transport,
                             health=HealthMonitor(run_dir=run_dir)).run()
    return time.perf_counter() - start, result


def checkpoints_identical(a, b) -> bool:
    return (set(a.final_weights) == set(b.final_weights)
            and all(np.array_equal(a.final_weights[k], b.final_weights[k])
                    for k in a.final_weights))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--run-dir", required=True)
    parser.add_argument("--out", default=None,
                        help="report path (default BENCH_pr<N>.json)")
    parser.add_argument("--pairs", type=int,
                        default=int(os.environ.get("BENCH_PAIRS", "2")),
                        help="interleaved serial/pool pairs (default 2)")
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--model", default="bert-mini")
    parser.add_argument("--registry", default=os.environ.get("BENCH_REGISTRY",
                                                             "runs"),
                        help="run-registry root ('' skips registration)")
    args = parser.parse_args(argv)

    bench_pr = int(os.environ.get("BENCH_PR", "7"))
    out_path = Path(args.out or f"BENCH_pr{bench_pr}.json")
    base_dir = Path(args.run_dir)
    if base_dir.exists():
        shutil.rmtree(base_dir)

    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cores = os.cpu_count() or 1

    job = build_job(args.model, args.rounds, args.clients)
    times: dict[str, list[float]] = {"serial": [], "pool": []}
    results: dict[str, list] = {"serial": [], "pool": []}
    for pair in range(1, args.pairs + 1):
        for side, transport in (("serial", "memory"), ("pool", "shm")):
            print(f"pair {pair}/{args.pairs}: {side} ({transport})",
                  file=sys.stderr)
            elapsed, result = run_once(job, transport,
                                       base_dir / f"{side}-{pair}",
                                       args.clients)
            times[side].append(elapsed)
            results[side].append(result)

    # 1. determinism gate: every run, on either fabric, must land on the
    # same global checkpoint before a single number is reported
    reference = results["serial"][0]
    for side in ("serial", "pool"):
        for index, result in enumerate(results[side]):
            if not checkpoints_identical(reference, result):
                print(f"error: {side} run {index + 1} diverged from the "
                      "serial reference checkpoint", file=sys.stderr)
                return 1
    print(f"checkpoints bit-identical across "
          f"{args.pairs * 2} runs x 2 fabrics "
          f"({len(reference.final_weights)} tensors)")

    # 2. the report
    speedups = [s / p for s, p in zip(times["serial"], times["pool"])]
    registry = MetricsRegistry()
    for side in ("serial", "pool"):
        for elapsed in times[side]:
            registry.histogram("bench.parallel_run_seconds",
                               side=side).observe(elapsed)
            registry.histogram("bench.parallel_round_seconds",
                               side=side).observe(elapsed / args.rounds)
    registry.gauge("bench.parallel_speedup_best").set(max(speedups))
    registry.gauge("bench.parallel_speedup_median").set(
        statistics.median(speedups))
    registry.gauge("bench.cores").set(cores)

    head = subprocess.run(["git", "rev-parse", "HEAD"], capture_output=True,
                          text=True).stdout.strip()
    report = {
        "protocol": {
            "pr": bench_pr,
            "candidate_ref": head,
            "workload": (f"{args.rounds}-round {args.clients}-client "
                         f"federated {args.model} MLM pretraining, "
                         "synthetic EHR cohort (240 patients, seq 24, "
                         "batch 16, 1 local epoch)"),
            "comparison": ("serial = threaded clients on the in-memory bus; "
                           "pool = one forked process per client on the shm "
                           "fabric, strictly interleaved serial/pool pairs"),
            "pairs": args.pairs,
            "cores": cores,
            "backend": active_backend().describe(),
            "default_backend": get_backend(),
            "blas": blas_thread_info(),
            "note": ("with W workers on C cores the ideal speedup is "
                     "min(W, C) minus coordination; on a 1-core machine the "
                     "pool cannot beat serial — this A/B still gates "
                     "determinism and catches pathological overhead"),
        },
        "wallclock": {
            "serial_s": [round(t, 3) for t in times["serial"]],
            "pool_s": [round(t, 3) for t in times["pool"]],
            "serial_round_s_min": round(min(times["serial"]) / args.rounds, 3),
            "pool_round_s_min": round(min(times["pool"]) / args.rounds, 3),
            "speedup_by_pair": [round(s, 3) for s in speedups],
            "speedup_best": round(max(speedups), 3),
            "speedup_median": round(statistics.median(speedups), 3),
        },
        "determinism": {
            "checkpoints_bit_identical": True,
            "tensors": len(reference.final_weights),
            "runs_compared": args.pairs * 2,
        },
        "metrics": registry.to_dict(),
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    print(f"  serial round min {report['wallclock']['serial_round_s_min']}s, "
          f"pool round min {report['wallclock']['pool_round_s_min']}s, "
          f"speedup best {report['wallclock']['speedup_best']}x "
          f"(cores={cores})")

    # 3. registry + deterministic diff gate (PR 5 tooling): pool vs serial
    # on dimensions that cannot flake on runner load
    if args.registry:
        cli = [sys.executable, "-m", "repro.obs", "runs"]
        env = dict(os.environ,
                   PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"))
        subprocess.run(cli + ["register", str(out_path),
                              "--name", f"bench-pr{bench_pr}-smoke",
                              "--kind", "bench", "--root", args.registry,
                              "--note", "serial vs shm worker pool"],
                       check=True, env=env)
        for side in ("serial", "pool"):
            subprocess.run(cli + ["register", str(base_dir / f"{side}-1"),
                                  "--name", f"bench-smoke-{side}",
                                  "--kind", "run", "--root", args.registry,
                                  "--note", f"{side} side of the A/B"],
                           check=True, env=env)
        verdict = subprocess.run(
            cli + ["diff", "bench-smoke-serial", "bench-smoke-pool",
                   "--root", args.registry,
                   "--dimensions", "round_bytes,alerts"],
            env=env)
        if verdict.returncode != 0:
            print("error: pool run regressed vs serial on deterministic "
                  f"dimensions (exit {verdict.returncode})", file=sys.stderr)
            return 1
        print("runs diff: pool matches serial on round_bytes,alerts")
    return 0


if __name__ == "__main__":
    sys.exit(main())
