#!/usr/bin/env python
"""Live-operations smoke: scrape a federation mid-run and gate on the result.

Runs a short socket-transport federation with the metrics exporter armed
(``SimulatorRunner(metrics_port=0)``) and, while rounds are executing,
scrapes ``/metrics`` and ``/healthz`` exactly as a Prometheus server or a
liveness probe would.  The gates:

1. every scrape parses under the Prometheus text exposition format
   (:func:`repro.obs.exporter.parse_prometheus_text` raises on a malformed
   line);
2. at least one **mid-run** scrape carries ``sys_rss_bytes`` gauges tagged
   for the server AND every client process — proof that worker resource
   samples stream through the telemetry deltas while the run is live;
3. the core federation/transport series are present
   (``federation_rounds``, ``transport_messages_delivered``);
4. ``/healthz`` returns valid JSON with a status field.

Artifacts (for CI upload): the widest mid-run scrape (``scrape.txt``), the
last ``/healthz`` body (``healthz.json``) and a pass/fail summary
(``live_smoke.json``).  Exits non-zero on any gate failure.

Usage::

    python scripts/live_smoke.py --out-dir live-smoke
    python scripts/live_smoke.py --rounds 3 --clients 4 --train-seconds 0.5
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.flare import (  # noqa: E402
    DXO,
    DataKind,
    FLContext,
    FLJob,
    Learner,
    MetaKey,
    SimulatorRunner,
)
from repro.obs.exporter import parse_prometheus_text  # noqa: E402


class PacedLearner(Learner):
    """Deterministic learner that sleeps long enough to be scraped mid-round."""

    train_seconds = 0.5

    def __init__(self, site_name: str) -> None:
        super().__init__(name="PacedLearner")
        self.site_name = site_name

    def train(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        time.sleep(self.train_seconds)
        updated = {key: np.asarray(value) + np.float32(0.01)
                   for key, value in dxo.data.items()}
        return DXO(DataKind.WEIGHTS, data=updated,
                   meta={MetaKey.NUM_STEPS_CURRENT_ROUND: 1})


def scrape_loop(runner: SimulatorRunner, scrapes: list, healthz: list,
                stop: threading.Event, period: float) -> None:
    while not stop.is_set():
        exporter = runner.metrics_exporter
        if exporter is not None:
            url = exporter.url
            try:
                with urllib.request.urlopen(url + "/metrics",
                                            timeout=2) as response:
                    scrapes.append(response.read().decode())
                with urllib.request.urlopen(url + "/healthz",
                                            timeout=2) as response:
                    healthz.append(response.read().decode())
            except Exception:
                pass  # exporter mid-start or mid-teardown; keep polling
        stop.wait(period)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default="live-smoke")
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--train-seconds", type=float, default=0.5,
                        help="per-client sleep per round (scrape window)")
    parser.add_argument("--scrape-period", type=float, default=0.1)
    args = parser.parse_args(argv)

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    PacedLearner.train_seconds = args.train_seconds

    job = FLJob(
        name="live-smoke",
        initial_weights={"dense.weight": np.zeros((16, 16), dtype=np.float32)},
        learner_factory=PacedLearner,
        num_rounds=args.rounds,
        evaluator=lambda weights: {
            "mean_weight": float(np.mean(weights["dense.weight"]))},
    )
    runner = SimulatorRunner(job, n_clients=args.clients, seed=3,
                             run_dir=out_dir / "run", transport="socket",
                             metrics_port=0, sysmon=args.scrape_period,
                             telemetry_flush=args.scrape_period)

    scrapes: list[str] = []
    healthz: list[str] = []
    stop = threading.Event()
    scraper = threading.Thread(
        target=scrape_loop, args=(runner, scrapes, healthz, stop,
                                  args.scrape_period), daemon=True)
    scraper.start()
    result = runner.run()
    stop.set()
    scraper.join(timeout=5)

    failures: list[str] = []
    expected_sites = {f"site-{i + 1}" for i in range(args.clients)}

    # gate 1: every scrape parses
    parsed = []
    for index, text in enumerate(scrapes):
        try:
            parsed.append(parse_prometheus_text(text))
        except ValueError as error:
            failures.append(f"scrape {index} unparseable: {error}")
            parsed.append([])

    # gate 2: some mid-run scrape shows RSS for the server and every site
    best_index, best_procs = -1, set()
    for index, samples in enumerate(parsed):
        procs = {labels.get("process") for name, labels, _ in samples
                 if name == "sys_rss_bytes"}
        if len(procs) > len(best_procs):
            best_index, best_procs = index, procs
    if not best_procs >= {"server"} | expected_sites:
        failures.append(
            f"no scrape carried sys_rss_bytes for server + all sites; best "
            f"saw {sorted(p for p in best_procs if p)}")

    # gate 3: core series present in some scrape (federation_rounds only
    # appears once the first round closes, which may postdate the widest
    # resource scrape)
    if parsed and any(samples for samples in parsed):
        names = {name for samples in parsed for name, _, _ in samples}
        for series in ("federation_rounds", "transport_messages_delivered"):
            if series not in names:
                failures.append(f"core series {series} missing from "
                                "every scrape")
    else:
        failures.append("no scrapes succeeded at all")

    # gate 4: /healthz is valid JSON with a status
    last_healthz: dict = {}
    if healthz:
        try:
            last_healthz = json.loads(healthz[-1])
            if "status" not in last_healthz:
                failures.append("/healthz JSON lacks a status field")
        except json.JSONDecodeError as error:
            failures.append(f"/healthz body is not JSON: {error}")
    else:
        failures.append("no /healthz responses received")

    if result.stats.num_rounds != args.rounds:
        failures.append(f"expected {args.rounds} rounds, "
                        f"got {result.stats.num_rounds}")

    (out_dir / "scrape.txt").write_text(
        scrapes[best_index] if best_index >= 0 else "")
    (out_dir / "healthz.json").write_text(
        json.dumps(last_healthz, indent=2) + "\n")
    summary = {
        "config": {"rounds": args.rounds, "clients": args.clients,
                   "transport": "socket",
                   "train_seconds": args.train_seconds},
        "observed": {
            "scrapes": len(scrapes),
            "rss_processes": sorted(p for p in best_procs if p),
            "peak_rss_bytes": result.stats.peak_rss_bytes,
            "healthz_status": last_healthz.get("status"),
        },
        "failures": failures,
    }
    (out_dir / "live_smoke.json").write_text(
        json.dumps(summary, indent=2) + "\n")

    print(f"live-smoke: {len(scrapes)} scrape(s), rss processes "
          f"{sorted(p for p in best_procs if p)}, healthz "
          f"{last_healthz.get('status')!r}")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
