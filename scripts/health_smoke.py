#!/usr/bin/env python
"""Seeded health-monitor smoke run for CI and baseline regeneration.

Runs a small deterministic federated job (ToyLearner arithmetic, raw codec,
no timing in any compared dimension) with telemetry + health armed, so the
resulting run directory can be diffed against the checked-in clean baseline
with ``python -m repro.obs runs diff`` on the deterministic dimensions
(``round_bytes``, ``final_metric``, ``alerts``).

Usage::

    python scripts/health_smoke.py --run-dir runs/health-smoke
    python scripts/health_smoke.py --run-dir /tmp/dirty --diverge site-2
    # regenerate the CI baseline:
    python scripts/health_smoke.py --run-dir benchmarks/baselines/health-clean

``--diverge SITE`` makes one site push hard against the cohort from round 1
on, which must produce ``diverging-client`` alerts naming that site (and a
nonzero ``runs diff`` verdict against the clean baseline).
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.flare import DXO, DataKind, FLJob, Learner, MetaKey, SimulatorRunner  # noqa: E402
from repro.obs import HealthMonitor  # noqa: E402


class ArithmeticLearner(Learner):
    """Deterministic learner: adds +1 to every weight, no RNG, no clock."""

    def __init__(self, site_name: str, diverge: bool = False) -> None:
        super().__init__(name="ArithmeticLearner")
        self.site_name = site_name
        self.diverge = diverge

    def train(self, dxo: DXO, fl_ctx) -> DXO:
        round_number = int(fl_ctx.get_prop("current_round", 0))
        if self.diverge:
            data = {k: np.asarray(v) - 40.0 for k, v in dxo.data.items()}
        else:
            data = {k: np.asarray(v) + 1.0 for k, v in dxo.data.items()}
        return DXO(DataKind.WEIGHTS, data=data,
                   meta={MetaKey.NUM_STEPS_CURRENT_ROUND: 10,
                         "train_loss": 1.0 / (1 + round_number)})

    def validate(self, dxo: DXO, fl_ctx) -> dict[str, float]:
        mean = float(np.mean([np.mean(np.asarray(v))
                              for v in dxo.data.values()]))
        return {"valid_acc": mean}


def evaluator(weights: dict[str, np.ndarray]) -> dict[str, float]:
    mean = float(np.mean([np.mean(np.asarray(v)) for v in weights.values()]))
    return {"valid_acc": round(mean, 6)}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--run-dir", required=True)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--diverge", default=None, metavar="SITE",
                        help="make SITE (e.g. site-2) push against the cohort")
    args = parser.parse_args(argv)

    run_dir = Path(args.run_dir)
    if run_dir.exists():
        shutil.rmtree(run_dir)

    weights = {"layer.weight": np.zeros((8, 8), dtype=np.float32),
               "layer.bias": np.zeros(8, dtype=np.float32)}
    job = FLJob(
        name="health-smoke", initial_weights=weights,
        learner_factory=lambda name: ArithmeticLearner(
            name, diverge=(name == args.diverge)),
        num_rounds=args.rounds, min_clients=2, evaluator=evaluator)
    runner = SimulatorRunner(job, n_clients=args.clients, seed=0,
                             run_dir=run_dir, telemetry=True,
                             health=HealthMonitor(run_dir=run_dir))
    result = runner.run()

    print(f"run dir: {run_dir}")
    print(f"rounds: {len(result.stats.rounds)}, "
          f"final valid_acc: "
          f"{result.stats.rounds[-1].global_metrics.get('valid_acc')}")
    for alert in result.stats.alerts:
        print(f"  alert: {alert.severity} {alert.detector} "
              f"r{alert.round_number} {alert.client or '-'}")
    if args.diverge:
        flagged = {a.client for a in result.stats.alerts
                   if a.detector == "diverging-client"}
        if flagged != {args.diverge}:
            print(f"error: expected diverging-client alerts naming "
                  f"{args.diverge}, got {sorted(flagged)}")
            return 1
    summary = json.loads((run_dir / "stats.json").read_text())
    assert summary["rounds"], "stats.json must hold the round records"
    return 0


if __name__ == "__main__":
    sys.exit(main())
