#!/usr/bin/env bash
# Benchmark this checkout against a baseline revision → BENCH_pr<N>.json.
#
# Protocol: the baseline revision is checked out into a temporary git
# worktree, and baseline/candidate runs of the model-throughput benchmark are
# strictly *interleaved* (base, cand, base, cand, ...).  On a shared machine
# absolute step times drift by tens of percent between time windows, so only
# back-to-back pairs produce trustworthy ratios; the report keeps every round
# and summarises min- and median-based speedups.  The fused-vs-reference op
# microbenchmark, the wire benchmark (codec throughput + federated
# bytes-per-round per compression setting), the parallel serial-vs-pool
# A/B (scripts/bench_smoke.py) and the massive-cohort benches (flat-vs-tree
# fan-in, sync-vs-async wall-clock, gated cohort smoke) run once on the
# candidate side.
#
# Usage:
#   scripts/run_bench.sh
#
# Environment:
#   BENCH_PR      PR number being benchmarked; names the output file and picks
#                 the default baseline ("PR <N-1>:" commit) (default: 9)
#   BASELINE_REF  git rev to benchmark against (default: the "PR <N-1>:" commit)
#   BENCH_MODELS  comma-separated model list (default: bert-mini,lstm,bert)
#   BENCH_ROUNDS  number of interleaved A/B rounds (default: 3)
#   BENCH_OUT     output path (default: BENCH_pr${BENCH_PR}.json in the repo root)
#   BENCH_REGISTRY  run-registry root the report is registered under, so
#                 `python -m repro.obs runs list|diff` sees it (default: runs;
#                 set empty to skip registration)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_PR="${BENCH_PR:-9}"
BASELINE_REF="${BASELINE_REF:-$(git log --format=%H --grep="^PR $((BENCH_PR - 1)):" -n 1)}"
if [ -z "$BASELINE_REF" ]; then
    echo "error: could not resolve baseline rev; set BASELINE_REF" >&2
    exit 1
fi
BENCH_MODELS="${BENCH_MODELS:-bert-mini,lstm,bert}"
BENCH_ROUNDS="${BENCH_ROUNDS:-3}"
BENCH_OUT="${BENCH_OUT:-BENCH_pr${BENCH_PR}.json}"
BENCH_REGISTRY="${BENCH_REGISTRY-runs}"

WORK="$(mktemp -d)"
BASE_TREE="$WORK/baseline"
trap 'git worktree remove --force "$BASE_TREE" 2>/dev/null || true; rm -rf "$WORK"' EXIT
git worktree add --detach --quiet "$BASE_TREE" "$BASELINE_REF"

NODE_IDS=()
IFS=',' read -ra MODEL_ARR <<<"$BENCH_MODELS"
for m in "${MODEL_ARR[@]}"; do
    NODE_IDS+=("benchmarks/test_model_throughput.py::test_train_step_throughput[$m]")
done

run_side() {  # run_side <tree> <json-out>
    (cd "$1" && PYTHONPATH="$1/src" python -m pytest "${NODE_IDS[@]}" \
        -q --benchmark-json="$2" >/dev/null)
}

for round in $(seq 1 "$BENCH_ROUNDS"); do
    echo "round $round/$BENCH_ROUNDS: baseline ($BASELINE_REF)" >&2
    run_side "$BASE_TREE" "$WORK/base_$round.json"
    echo "round $round/$BENCH_ROUNDS: candidate" >&2
    run_side "$PWD" "$WORK/cand_$round.json"
done

echo "op microbench (fused vs reference)" >&2
PYTHONPATH="src" python -m pytest benchmarks/test_fused_ops_microbench.py \
    -q --benchmark-json="$WORK/micro.json" >/dev/null

echo "wire bench (codec throughput + federated bytes/round)" >&2
PYTHONPATH="src" python -m pytest benchmarks/test_wire_bench.py \
    -q --benchmark-json="$WORK/wire.json" >/dev/null

echo "parallel bench (serial vs shm worker pool)" >&2
# candidate side only; registration is skipped here because the combined
# report is registered below
python scripts/bench_smoke.py --run-dir "$WORK/parallel-runs" \
    --out "$WORK/parallel.json" --registry "" >/dev/null

echo "cohort bench (flat-vs-tree fan-in + sync-vs-async rounds)" >&2
PYTHONPATH="src" python -m pytest benchmarks/test_massive_cohort.py \
    -q --benchmark-json="$WORK/cohort.json" >/dev/null

echo "cohort smoke (reduced: 200-client async run, determinism gates)" >&2
# candidate side only, reduced from the CI-sized 1,000-client run; the
# registry diff is skipped here because the combined report is registered
# below — the materialization/RSS/bit-identity gates still apply
python scripts/cohort_smoke.py --clients 200 --commits 2 --buffer 16 \
    --concurrency 32 --dim 256 --run-dir "$WORK/cohort-runs" \
    --out "$WORK/cohort_smoke.json" --registry "" >/dev/null

PYTHONPATH="src" python - "$WORK" "$BENCH_ROUNDS" "$BASELINE_REF" "$BENCH_OUT" "$BENCH_PR" <<'EOF'
import json
import statistics
import subprocess
import sys

from repro.obs.metrics import MetricsRegistry

work, rounds, baseline_ref, out_path = sys.argv[1], int(sys.argv[2]), sys.argv[3], sys.argv[4]
bench_pr = int(sys.argv[5])


def load(path):
    with open(path) as fh:
        data = json.load(fh)
    stats = {}
    for bench in data["benchmarks"]:
        stats[bench["name"]] = {"min": bench["stats"]["min"],
                                "median": bench["stats"]["median"],
                                "extra": bench.get("extra_info", {})}
    return stats


rounds_out, models = [], {}
for i in range(1, rounds + 1):
    base = load(f"{work}/base_{i}.json")
    cand = load(f"{work}/cand_{i}.json")
    rounds_out.append({"round": i, "baseline_s": base, "candidate_s": cand})
    for name in base:
        if name in cand:
            models.setdefault(name, {"baseline_min_s": [], "candidate_min_s": [],
                                     "speedup_min": [], "speedup_median": []})
            models[name]["baseline_min_s"].append(base[name]["min"])
            models[name]["candidate_min_s"].append(cand[name]["min"])
            models[name]["speedup_min"].append(base[name]["min"] / cand[name]["min"])
            models[name]["speedup_median"].append(
                base[name]["median"] / cand[name]["median"])

summary = {}
for name, m in models.items():
    short = name.split("[")[-1].rstrip("]")
    summary[short] = {
        "baseline_min_ms": round(min(m["baseline_min_s"]) * 1e3, 2),
        "candidate_min_ms": round(min(m["candidate_min_s"]) * 1e3, 2),
        "speedup_best_round_min": round(max(m["speedup_min"]), 2),
        "speedup_median_of_rounds": round(statistics.median(m["speedup_min"]), 2),
        "speedup_by_round_min": [round(s, 2) for s in m["speedup_min"]],
        "speedup_by_round_median": [round(s, 2) for s in m["speedup_median"]],
    }

micro = load(f"{work}/micro.json")
micro_out = {}
for name, stat in micro.items():
    op, impl = name.rsplit("[", 1)
    impl = impl.rstrip("]")
    micro_out.setdefault(op, {})[impl + "_us"] = round(stat["min"] * 1e6, 1)
for op, pair in micro_out.items():
    if "fused_us" in pair and "reference_us" in pair:
        pair["speedup"] = round(pair["reference_us"] / pair["fused_us"], 2)

# Wire benchmark: raw-vs-npz codec throughput and federated bytes/round per
# compression setting (candidate side only — the baseline has no codec).
wire = load(f"{work}/wire.json")
codec_out, federation_out = {}, {}
for name, stat in wire.items():
    if name.startswith("test_codec_"):
        direction = "encode" if "encode" in name else "decode"
        model, codec = name.rsplit("[", 1)[1].rstrip("]").rsplit("-", 1)
        entry = codec_out.setdefault(model, {}).setdefault(direction, {})
        entry[codec + "_ms"] = round(stat["min"] * 1e3, 3)
        if "payload_bytes" in stat["extra"]:
            codec_out[model]["payload_bytes"] = stat["extra"]["payload_bytes"]
    elif name.startswith("test_federated_round_bytes"):
        extra = stat["extra"]
        federation_out.setdefault(extra["model"], {})[extra["compression"]] = {
            "bytes_per_round_steady": extra["bytes_per_round_steady"],
            "bytes_delivered": extra["bytes_delivered"],
            "round_seconds_mean": round(extra["round_seconds_mean"], 4),
            "wire_bytes_raw": extra["wire_bytes_raw"],
            "wire_bytes_encoded": extra["wire_bytes_encoded"],
        }
for model, directions in codec_out.items():
    for direction in ("encode", "decode"):
        pair = directions.get(direction, {})
        if "raw_ms" in pair and "npz_ms" in pair:
            pair["speedup_raw_vs_npz"] = round(pair["npz_ms"] / pair["raw_ms"], 2)
for model, settings in federation_out.items():
    base = settings.get("none", {}).get("bytes_per_round_steady")
    for setting, entry in settings.items():
        if base and entry["bytes_per_round_steady"]:
            entry["reduction_vs_none"] = round(
                base / entry["bytes_per_round_steady"], 2)

# Per-step timings in the shared repro.obs.metrics/v1 schema, so run-report
# tooling and metrics.json consumers can read BENCH_*.json the same way.
registry = MetricsRegistry()
for name, m in models.items():
    short = name.split("[")[-1].rstrip("]")
    for side in ("baseline", "candidate"):
        for value in m[f"{side}_min_s"]:
            registry.histogram("bench.step_seconds", model=short,
                               side=side).observe(value)
    registry.gauge("bench.speedup_min", model=short).set(max(m["speedup_min"]))
    registry.gauge("bench.speedup_median_of_rounds",
                   model=short).set(statistics.median(m["speedup_min"]))
for model, settings in federation_out.items():
    for setting, entry in settings.items():
        registry.gauge("bench.wire_bytes_per_round", model=model,
                       compression=setting).set(entry["bytes_per_round_steady"])

# Massive-cohort benches: flat-vs-tree fan-in and sync-vs-async simulated
# rounds (candidate side only — the baseline has neither mechanism).
cohort = load(f"{work}/cohort.json")
fanin_out, cohort_rounds = {}, {}
for name, stat in cohort.items():
    extra = stat["extra"]
    if name.startswith("test_fanin"):
        fanin_out.setdefault(extra["family"], {})[extra["mode"]] = {
            "min_ms": round(stat["min"] * 1e3, 2),
            "n_updates": extra["n_updates"],
            "peak_materialized": extra["peak_materialized"],
            "depth": extra["depth"],
        }
    elif name.startswith("test_cohort_round"):
        cohort_rounds[extra["mode"]] = {
            "wallclock_ms": round(stat["min"] * 1e3, 1),
            "clients": extra["clients"],
            "commits": extra["commits"],
            "updates_per_commit": extra["updates_per_commit"],
            "bytes_delivered": extra["bytes_delivered"],
            "peak_materialized_updates": extra["peak_materialized_updates"],
            "staleness_max": extra["staleness_max"],
        }
for family, pair in fanin_out.items():
    flat, tree = pair.get("flat"), pair.get("tree")
    if flat and tree and tree["peak_materialized"]:
        pair["materialization_reduction"] = round(
            flat["peak_materialized"] / tree["peak_materialized"], 2)
    for mode, entry in list(pair.items()):
        if isinstance(entry, dict):
            registry.gauge("bench.fanin_peak_materialized", family=family,
                           mode=mode).set(entry["peak_materialized"])
for mode, entry in cohort_rounds.items():
    registry.gauge("bench.cohort_round_ms",
                   mode=mode).set(entry["wallclock_ms"])

with open(f"{work}/cohort_smoke.json") as fh:
    cohort_smoke = json.load(fh)
cohort_out = {
    "fanin": fanin_out,
    "rounds": cohort_rounds,
    "smoke": {key: cohort_smoke[key]
              for key in ("cohort", "gates", "observed")
              if key in cohort_smoke},
}

# Parallel serial-vs-pool A/B (bench_smoke.py output, candidate side only):
# keep the protocol/wallclock/determinism sections; its metrics registry is
# folded into the shared registry below.
with open(f"{work}/parallel.json") as fh:
    parallel_report = json.load(fh)
parallel_out = {key: parallel_report[key]
                for key in ("protocol", "wallclock", "determinism")
                if key in parallel_report}
if isinstance(parallel_report.get("metrics"), dict):
    registry.merge_dict(parallel_report["metrics"])

head = subprocess.run(["git", "rev-parse", "HEAD"], capture_output=True,
                      text=True).stdout.strip()
report = {
    "protocol": {
        "pr": bench_pr,
        "baseline_ref": baseline_ref,
        "candidate_ref": head,
        "interleaved_rounds": rounds,
        "workload": "forward+backward train step, batch 16, seq 40, vocab 200",
        "note": ("baseline and candidate alternate back-to-back; compare "
                 "per-round ratios, not absolute times, on shared machines"),
    },
    "models": summary,
    "op_microbench_fwd_bwd": micro_out,
    "wire": {
        "workload": (f"codec: full state-dict encode/decode; federation: "
                     f"3 rounds x 2 clients, DriftLearner, steady-state "
                     f"bytes exclude the round-0 full broadcast"),
        "codec": codec_out,
        "federation_bytes_per_round": federation_out,
    },
    "parallel": parallel_out,
    "cohort": cohort_out,
    "metrics": registry.to_dict(),
    "rounds": rounds_out,
}
with open(out_path, "w") as fh:
    json.dump(report, fh, indent=2)
print(f"wrote {out_path}")
for name, s in summary.items():
    print(f"  {name}: min {s['speedup_best_round_min']}x, "
          f"median-of-rounds {s['speedup_median_of_rounds']}x")
for model, settings in federation_out.items():
    best = max((e.get("reduction_vs_none", 1.0) for e in settings.values()),
               default=1.0)
    print(f"  wire {model}: best bytes/round reduction {best}x")
wallclock = parallel_out.get("wallclock", {})
if wallclock:
    print(f"  parallel: pool vs serial best {wallclock['speedup_best']}x "
          f"(cores={parallel_out['protocol']['cores']})")
median_fanin = fanin_out.get("median", {})
if "materialization_reduction" in median_fanin:
    print(f"  cohort fan-in: tree peak {median_fanin['tree']['peak_materialized']} "
          f"vs flat {median_fanin['flat']['peak_materialized']} updates "
          f"({median_fanin['materialization_reduction']}x lower)")
observed = cohort_out["smoke"].get("observed", {})
if observed:
    print(f"  cohort smoke: peak materialized "
          f"{observed['peak_materialized_updates']}, peak RSS "
          f"{observed['peak_rss_mb']} MiB, "
          f"bit_identical={observed['bit_identical']}")
EOF

# Register the report in the run registry so it shows up in
# `python -m repro.obs runs list` and can be diffed against other benches:
#   python -m repro.obs runs diff bench-pr3 bench-pr4
if [ -n "$BENCH_REGISTRY" ]; then
    PYTHONPATH="src" python -m repro.obs runs register "$BENCH_OUT" \
        --name "bench-pr${BENCH_PR}" --kind bench --root "$BENCH_REGISTRY" \
        --note "baseline $BASELINE_REF"
fi
