#!/usr/bin/env bash
# Run the fault-injection chaos suite on its own.
#
# The suite uses a fast default profile (tiny injected delays, few rounds) so
# it finishes in well under 60 seconds; it also runs as part of the normal
# tier-1 `pytest` invocation and can be excluded there with -m "not chaos".
#
# Usage: scripts/run_chaos.sh [extra pytest args]
set -euo pipefail
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m pytest -m chaos "$@"
