#!/usr/bin/env python
"""Multi-process federation smoke run: sockets vs memory, same checkpoints.

Runs the same small deterministic federated job twice — once with threaded
clients on the in-memory bus, once with one OS process per client over the
TCP socket transport — with the health monitor armed on both, then asserts
the two fabrics produced bit-identical global checkpoints.  CI runs this as
the ``socket-smoke`` job and uploads the socket run's ``health.jsonl``.

Usage::

    python scripts/socket_smoke.py --run-dir runs/socket-smoke
    python scripts/socket_smoke.py --run-dir /tmp/smoke --rounds 3 --clients 6
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.flare import DXO, DataKind, FLJob, Learner, MetaKey, SimulatorRunner  # noqa: E402
from repro.obs import HealthMonitor  # noqa: E402


class ArithmeticLearner(Learner):
    """Deterministic learner: adds +1 to every weight, no RNG, no clock."""

    def __init__(self, site_name: str) -> None:
        super().__init__(name="ArithmeticLearner")
        self.site_name = site_name

    def train(self, dxo: DXO, fl_ctx) -> DXO:
        round_number = int(fl_ctx.get_prop("current_round", 0))
        data = {k: np.asarray(v) + 1.0 for k, v in dxo.data.items()}
        return DXO(DataKind.WEIGHTS, data=data,
                   meta={MetaKey.NUM_STEPS_CURRENT_ROUND: 10,
                         "train_loss": 1.0 / (1 + round_number)})

    def validate(self, dxo: DXO, fl_ctx) -> dict[str, float]:
        mean = float(np.mean([np.mean(np.asarray(v))
                              for v in dxo.data.values()]))
        return {"valid_acc": mean}


def run_once(transport: str, run_dir: Path, rounds: int, clients: int):
    weights = {"layer.weight": np.zeros((8, 8), dtype=np.float32),
               "layer.bias": np.zeros(8, dtype=np.float32)}
    job = FLJob(name="socket-smoke", initial_weights=weights,
                learner_factory=lambda name: ArithmeticLearner(name),
                num_rounds=rounds, min_clients=2)
    runner = SimulatorRunner(job, n_clients=clients, seed=0, run_dir=run_dir,
                             transport=transport,
                             health=HealthMonitor(run_dir=run_dir))
    return runner.run()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--run-dir", required=True)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--clients", type=int, default=4)
    args = parser.parse_args(argv)

    base_dir = Path(args.run_dir)
    if base_dir.exists():
        shutil.rmtree(base_dir)

    results = {transport: run_once(transport, base_dir / transport,
                                   args.rounds, args.clients)
               for transport in ("memory", "socket")}

    memory_result, socket_result = results["memory"], results["socket"]
    for key in memory_result.final_weights:
        if not np.array_equal(memory_result.final_weights[key],
                              socket_result.final_weights[key]):
            print(f"error: checkpoint mismatch between fabrics at {key!r}")
            return 1
    print(f"checkpoints bit-identical across fabrics "
          f"({len(memory_result.final_weights)} tensors)")

    for transport, result in results.items():
        stats = result.stats
        print(f"{transport}: rounds={stats.num_rounds} "
              f"delivered={stats.messages_delivered} "
              f"bytes={stats.bytes_delivered} retries={stats.retries}")
        if stats.num_rounds != args.rounds:
            print(f"error: {transport} run finished {stats.num_rounds} of "
                  f"{args.rounds} rounds")
            return 1
        health_path = result.run_dir / "health.jsonl"
        if not health_path.exists():
            print(f"error: {transport} run wrote no health.jsonl")
            return 1
        round_records = [json.loads(line)
                         for line in health_path.read_text().splitlines()
                         if line and '"event": "round"' in line]
        if len(round_records) != args.rounds:
            print(f"error: {transport} health log holds "
                  f"{len(round_records)} round records, "
                  f"expected {args.rounds}")
            return 1
    print(f"health artifacts: "
          f"{', '.join(str(r.run_dir / 'health.jsonl') for r in results.values())}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
