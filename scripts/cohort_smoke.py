#!/usr/bin/env python
"""Massive-cohort smoke: a deterministic 1,000-client async federated run.

Provisions a 1,000-site federation on the in-memory fabric and runs the
FedBuff-style :class:`AsyncScatterAndGather` controller for a few global
commits under the sequential (``threads=False``) drive, then gates on the
three massive-cohort guarantees:

1. **Bounded materialization** — the run's high-water mark of
   simultaneously-decoded client updates (``stats
   .peak_materialized_updates``) must stay at/below a hard cap that is
   O(1) in the cohort size: the streaming fold admits one update at a
   time no matter how many sites exist.
2. **Peak RSS** — the resident set of the whole process (provisioning,
   1,000 registered endpoints, the run itself), sampled by a
   :class:`repro.obs.sysmon.SysMonitor`, must stay under a budget sized
   for O(concurrency), not O(cohort), in-flight model payloads; the peak
   also lands on each run's ``stats.peak_rss_bytes`` for ``runs diff``.
3. **Bit-reproducibility** — two same-seed runs must produce identical
   final weights, identical per-update staleness sequences and identical
   per-window wire-byte counts.

Both run dirs are registered in the run registry (PR 5 tooling) and diffed
on the deterministic dimensions; any divergence exits non-zero.  CI runs
this as the ``cohort-smoke`` job and uploads the summary + diff artifacts.

Usage::

    python scripts/cohort_smoke.py --run-dir runs/cohort-smoke
    python scripts/cohort_smoke.py --clients 200 --commits 2   # quick local
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.flare import (  # noqa: E402
    DXO,
    DataKind,
    FLContext,
    FLJob,
    Learner,
    MetaKey,
    SimulatorRunner,
)
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.obs.sysmon import SysMonitor  # noqa: E402


class CohortLearner(Learner):
    """Instant deterministic learner: nudges every weight by a per-site delta.

    The model is a single 512x512 fp32 matrix (~1 MiB), so an accidental
    O(cohort) materialization (1,000 decoded updates alive at once) costs
    ~1 GiB and trips the RSS gate, while the intended O(1) streaming fold
    does not.
    """

    def __init__(self, site_name: str) -> None:
        super().__init__(name="CohortLearner")
        self.site_name = site_name
        index = int(site_name.rsplit("-", 1)[-1])
        self.delta = 0.001 * (1 + index % 13)
        self.steps = 1 + index % 7

    def train(self, dxo: DXO, fl_ctx: FLContext) -> DXO:
        updated = {key: np.asarray(value) + np.float32(self.delta)
                   for key, value in dxo.data.items()}
        return DXO(DataKind.WEIGHTS, data=updated,
                   meta={MetaKey.NUM_STEPS_CURRENT_ROUND: self.steps})


def initial_weights(dim: int) -> dict[str, np.ndarray]:
    return {"dense.weight": np.zeros((dim, dim), dtype=np.float32)}


def run_once(args, run_dir: Path, monitor: SysMonitor):
    job = FLJob(
        name="cohort-smoke",
        initial_weights=initial_weights(args.dim),
        learner_factory=CohortLearner,
        num_rounds=args.commits,
        mode="async",
        buffer_size=args.buffer,
        concurrency=args.concurrency,
        staleness_alpha=0.5,
        sampler="uniform",
        evaluator=lambda weights: {
            "mean_weight": float(np.mean(weights["dense.weight"]))},
    )
    started = time.perf_counter()
    result = SimulatorRunner(job, n_clients=args.clients, seed=args.seed,
                             run_dir=run_dir, threads=False,
                             key_bits=128).run()
    elapsed = time.perf_counter() - started
    monitor.sample()  # fold this run's high water into the peak
    result.stats.peak_rss_bytes = int(monitor.peak_rss_bytes)
    result.stats.save_json(run_dir / "stats.json")
    return elapsed, result


def staleness_trace(stats) -> list[int]:
    return [c.staleness for r in stats.rounds for c in r.client_records]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--run-dir", default="runs/cohort-smoke")
    parser.add_argument("--out", default="cohort_smoke.json")
    parser.add_argument("--clients", type=int, default=1000)
    parser.add_argument("--commits", type=int, default=2)
    parser.add_argument("--buffer", type=int, default=32)
    parser.add_argument("--concurrency", type=int, default=64)
    parser.add_argument("--dim", type=int, default=512,
                        help="model is one dim x dim fp32 matrix")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--max-materialized", type=int, default=2,
                        help="hard cap on simultaneously-decoded updates")
    parser.add_argument("--max-rss-mb", type=int, default=1024,
                        help="peak-RSS budget for the whole process")
    parser.add_argument("--registry", default=os.environ.get("BENCH_REGISTRY",
                                                             "runs"),
                        help="run-registry root ('' skips registration)")
    args = parser.parse_args(argv)

    base_dir = Path(args.run_dir)
    if base_dir.exists():
        shutil.rmtree(base_dir)

    # Whole-process resource monitor (replaces the ru_maxrss one-shot): a
    # private registry keeps it out of the runs' own telemetry, so the
    # bit-reproducibility gate is untouched by the sampling thread.
    monitor = SysMonitor(registry=MetricsRegistry(), interval=0.5,
                         process="cohort-smoke").start()
    runs = []
    for label in ("a", "b"):
        print(f"run {label}: {args.clients} clients, {args.commits} commits, "
              f"buffer {args.buffer}, concurrency {args.concurrency}",
              file=sys.stderr)
        runs.append(run_once(args, base_dir / f"run-{label}", monitor))
    (elapsed_a, result_a), (elapsed_b, result_b) = runs
    monitor.stop()

    failures: list[str] = []

    # 1. bounded materialization
    peaks = [result_a.stats.peak_materialized_updates,
             result_b.stats.peak_materialized_updates]
    if max(peaks) > args.max_materialized:
        failures.append(
            f"peak materialized updates {max(peaks)} exceeds the cap "
            f"{args.max_materialized} — the fold is buffering the cohort")

    # 2. peak RSS as sampled by the resource monitor across both runs
    peak_rss_mb = monitor.peak_rss_bytes / 2**20
    if peak_rss_mb > args.max_rss_mb:
        failures.append(f"peak RSS {peak_rss_mb:.0f} MiB exceeds the "
                        f"{args.max_rss_mb} MiB budget")

    # 3. bit-reproducibility across same-seed runs
    if set(result_a.final_weights) != set(result_b.final_weights) or not all(
            np.array_equal(result_a.final_weights[k], result_b.final_weights[k])
            for k in result_a.final_weights):
        failures.append("same-seed runs produced different final weights")
    if staleness_trace(result_a.stats) != staleness_trace(result_b.stats):
        failures.append("same-seed runs saw different staleness sequences")
    if [r.bytes_on_wire for r in result_a.stats.rounds] != \
            [r.bytes_on_wire for r in result_b.stats.rounds]:
        failures.append("same-seed runs put different bytes on the wire")

    quorum = [r.quorum_met for r in result_a.stats.rounds]
    if not all(quorum) or len(quorum) != args.commits:
        failures.append(f"expected {args.commits} committed windows, "
                        f"got quorum flags {quorum}")

    summary = {
        "cohort": {
            "clients": args.clients,
            "commits": args.commits,
            "buffer_size": args.buffer,
            "concurrency": args.concurrency,
            "model_bytes": args.dim * args.dim * 4,
            "transport": "memory (sequential drive, threads=False)",
        },
        "gates": {
            "max_materialized": args.max_materialized,
            "max_rss_mb": args.max_rss_mb,
        },
        "observed": {
            "peak_materialized_updates": max(peaks),
            "peak_rss_mb": round(peak_rss_mb, 1),
            "wallclock_s": [round(elapsed_a, 2), round(elapsed_b, 2)],
            "staleness_max": max(staleness_trace(result_a.stats), default=0),
            "bytes_on_wire": [r.bytes_on_wire for r in result_a.stats.rounds],
            "final_mean_weight": float(
                np.mean(result_a.final_weights["dense.weight"])),
            "bit_identical": not failures,
        },
        "failures": failures,
    }
    Path(args.out).write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {args.out}")
    print(f"  peak materialized {max(peaks)} (cap {args.max_materialized}), "
          f"peak RSS {peak_rss_mb:.0f} MiB (cap {args.max_rss_mb} MiB), "
          f"wallclock {elapsed_a:.1f}s/{elapsed_b:.1f}s")

    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    if failures:
        return 1

    # registry + deterministic diff gate: the two same-seed runs must be
    # indistinguishable on every deterministic dimension
    if args.registry:
        cli = [sys.executable, "-m", "repro.obs", "runs"]
        env = dict(os.environ,
                   PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"))
        for label in ("a", "b"):
            subprocess.run(cli + ["register", str(base_dir / f"run-{label}"),
                                  "--name", f"cohort-smoke-{label}",
                                  "--kind", "run", "--root", args.registry,
                                  "--note",
                                  f"{args.clients}-client async run {label}"],
                           check=True, env=env)
        verdict = subprocess.run(
            cli + ["diff", "cohort-smoke-a", "cohort-smoke-b",
                   "--root", args.registry,
                   "--dimensions", "round_bytes,final_metric,alerts"],
            env=env)
        if verdict.returncode != 0:
            print("error: same-seed cohort runs diverged in the registry "
                  f"diff (exit {verdict.returncode})", file=sys.stderr)
            return 1
        print("runs diff: run-a matches run-b on "
              "round_bytes,final_metric,alerts")
    return 0


if __name__ == "__main__":
    sys.exit(main())
