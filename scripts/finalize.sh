#!/bin/bash
# Final deliverable assembly: fill EXPERIMENTS.md from the bench JSON and
# regenerate the canonical test/bench outputs.
set -e
cd "$(dirname "$0")/.."
if [ -f bench.json ]; then
    python scripts/fill_experiments.py bench.json
else
    echo "bench.json missing — EXPERIMENTS.md placeholders left for manual fill"
fi
