#!/usr/bin/env python
"""Fill EXPERIMENTS.md placeholders from a pytest-benchmark JSON report.

Usage: python scripts/fill_experiments.py bench.json
"""

from __future__ import annotations

import json
import pathlib
import sys


def main(json_path: str) -> None:
    report = json.loads(pathlib.Path(json_path).read_text())
    table: dict[tuple[str, str], float] = {}
    fig2: dict[str, float] = {}
    fig3_stages = None
    fig3_seconds = None
    privacy: dict[str, float] = {}
    sweep: dict[str, dict] = {}
    robust: dict[str, float] = {}

    for bench in report["benchmarks"]:
        name = bench["name"]
        extra = bench.get("extra_info", {})
        if name.startswith("test_table3_cell["):
            inside = name[name.index("[") + 1:-1]  # e.g. "bert-centralized"
            model, scheme = inside.split("-", 1) if inside.count("-") == 1 else (None, None)
            if model is None:  # parametrize order: model_name, scheme
                parts = inside.rsplit("-", 1)
                model, scheme = parts[0], parts[1]
            value = extra.get("top1_accuracy_percent")
            if value is not None:
                table[(scheme, model)] = value
        elif name.startswith("test_fig2_regime["):
            regime = name[name.index("[") + 1:-1]
            curve = extra.get("mlm_loss_curve")
            if curve:
                fig2[regime] = curve[-1]
        elif name.startswith("test_fig3_transcript"):
            fig3_stages = extra.get("stages")
            fig3_seconds = extra.get("sec_per_local_epoch")
        elif name.startswith("test_privacy_filter_ablation["):
            privacy[extra.get("filter", "?")] = extra.get("best_acc_percent")
        elif name.startswith("test_dataset_size_sweep["):
            model = name[name.index("[") + 1:-1]
            sweep[model] = extra.get("accuracy_by_fraction")
        elif name.startswith("test_one_corrupted_site["):
            agg = name[name.index("[") + 1:-1]
            robust[agg] = extra.get("final_acc_percent")

    replacements = {
        "MEASURED_T3_CENT_BERT": table.get(("centralized", "bert")),
        "MEASURED_T3_CENT_MINI": table.get(("centralized", "bert-mini")),
        "MEASURED_T3_CENT_LSTM": table.get(("centralized", "lstm")),
        "MEASURED_T3_SA_BERT": table.get(("standalone", "bert")),
        "MEASURED_T3_SA_MINI": table.get(("standalone", "bert-mini")),
        "MEASURED_T3_SA_LSTM": table.get(("standalone", "lstm")),
        "MEASURED_T3_FL_BERT": table.get(("fl", "bert")),
        "MEASURED_T3_FL_MINI": table.get(("fl", "bert-mini")),
        "MEASURED_T3_FL_LSTM": table.get(("fl", "lstm")),
        "MEASURED_F2_CENT": fig2.get("centralized"),
        "MEASURED_F2_SMALL": fig2.get("small"),
        "MEASURED_F2_IMB": fig2.get("fl-imbalanced"),
        "MEASURED_F2_BAL": fig2.get("fl-balanced"),
        "MEASURED_F3_STAGES": (f"{sum(fig3_stages.values())}/{len(fig3_stages)} stages"
                               if fig3_stages else None),
        "MEASURED_F3_SECONDS": fig3_seconds,
        "MEASURED_PRIVACY": ", ".join(f"{k}: {v}%" for k, v in sorted(privacy.items()))
                            or None,
        "MEASURED_SWEEP": "; ".join(f"{m}: {v}" for m, v in sorted(sweep.items()))
                          or None,
        "MEASURED_ROBUST": ", ".join(f"{k}: {v}%" for k, v in sorted(robust.items()))
                           or None,
    }

    path = pathlib.Path(__file__).resolve().parents[1] / "EXPERIMENTS.md"
    text = path.read_text()
    unresolved = []
    for key, value in replacements.items():
        if value is None:
            unresolved.append(key)
            continue
        text = text.replace(key, str(value))
    path.write_text(text)
    print(f"filled {len(replacements) - len(unresolved)} placeholders; "
          f"unresolved: {unresolved}")


if __name__ == "__main__":
    main(sys.argv[1])
