#!/usr/bin/env python
"""Distributed-tracing smoke run: one merged trace from a socket federation.

Runs a small deterministic 2-round federated job with one OS process per
client over the TCP socket transport, telemetry armed, then asserts the
distributed-tracing contract on the merged ``trace.jsonl``:

- one ``trace_id`` across the header, every process join marker and the
  end footer;
- globally unique, process-prefixed span ids;
- every worker ``client_task`` a child of the server's ``round`` span for
  the same round, and every ``local_train`` under a ``client_task``;
- clock-aligned timestamps: child intervals nest inside their remote
  parent's interval on the server's timeline;
- the report CLI renders the run, and the Chrome trace-event export
  round-trips.

CI runs this as the ``trace-smoke`` job and uploads ``trace.jsonl`` plus
the Chrome export.

Usage::

    python scripts/trace_smoke.py --run-dir runs/trace-smoke
    python scripts/trace_smoke.py --run-dir /tmp/smoke --rounds 3 --clients 4
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.flare import DXO, DataKind, FLJob, Learner, MetaKey, SimulatorRunner  # noqa: E402
from repro.obs import export_chrome_trace, trace as obs_trace  # noqa: E402
from repro.obs.report import load_trace, load_trace_events, render_report  # noqa: E402

ALIGN_SLACK = 0.005  # seconds; offsets are exact, this covers float rounding


class TracedLearner(Learner):
    """Deterministic learner opening a local_train span per task."""

    def __init__(self, site_name: str) -> None:
        super().__init__(name="TracedLearner")
        self.site_name = site_name

    def train(self, dxo: DXO, fl_ctx) -> DXO:
        round_number = int(fl_ctx.get_prop("current_round", 0))
        with obs_trace.span("local_train", site=self.site_name):
            data = {k: np.asarray(v) + 1.0 for k, v in dxo.data.items()}
        return DXO(DataKind.WEIGHTS, data=data,
                   meta={MetaKey.NUM_STEPS_CURRENT_ROUND: 10,
                         "train_loss": 1.0 / (1 + round_number)})

    def validate(self, dxo: DXO, fl_ctx) -> dict[str, float]:
        mean = float(np.mean([np.mean(np.asarray(v))
                              for v in dxo.data.values()]))
        return {"valid_acc": mean}


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"error: {message}")
        raise SystemExit(1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--run-dir", required=True)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--clients", type=int, default=2)
    args = parser.parse_args(argv)

    run_dir = Path(args.run_dir)
    if run_dir.exists():
        shutil.rmtree(run_dir)

    weights = {"layer.weight": np.zeros((8, 8), dtype=np.float32),
               "layer.bias": np.zeros(8, dtype=np.float32)}
    job = FLJob(name="trace-smoke", initial_weights=weights,
                learner_factory=lambda name: TracedLearner(name),
                num_rounds=args.rounds, min_clients=args.clients)
    result = SimulatorRunner(job, n_clients=args.clients, seed=0,
                             run_dir=run_dir, transport="socket",
                             telemetry=True, telemetry_flush=0.2).run()
    check(result.stats.num_rounds == args.rounds,
          f"run finished {result.stats.num_rounds} of {args.rounds} rounds")

    trace_path = run_dir / "trace.jsonl"
    check(trace_path.exists(), "run wrote no trace.jsonl")
    events = load_trace_events(trace_path)
    spans = load_trace(trace_path)

    header = next(e for e in events if e.get("schema"))
    trace_ids = {header["trace_id"]}
    trace_ids |= {e["trace_id"] for e in events
                  if e.get("event") in ("process", "end") and "trace_id" in e}
    check(len(trace_ids) == 1,
          f"expected one trace_id, found {sorted(trace_ids)}")
    check(any(e.get("event") == "end" for e in events),
          "trace stream has no end footer")

    ids = [s["span_id"] for s in spans]
    check(len(ids) == len(set(ids)), "span-id collision in merged trace")
    for span in spans:
        check(span["span_id"].startswith(span["process"] + "-"),
              f"span id {span['span_id']!r} not prefixed with its process")

    rounds = {s["attrs"]["round"]: s for s in spans if s["name"] == "round"}
    tasks = [s for s in spans if s["name"] == "client_task"]
    trains = [s for s in spans if s["name"] == "local_train"]
    check(len(rounds) == args.rounds, f"expected {args.rounds} round spans")
    check(len(tasks) == args.rounds * args.clients,
          f"expected {args.rounds * args.clients} client_task spans, "
          f"got {len(tasks)}")
    worker_processes = {s["process"] for s in tasks}
    check(len(worker_processes) == args.clients,
          f"client_task spans from {sorted(worker_processes)}, "
          f"expected {args.clients} worker processes")
    task_ids = {s["span_id"] for s in tasks}
    for task in tasks:
        parent = rounds[task["attrs"]["round"]]
        check(task["parent_id"] == parent["span_id"],
              f"client_task {task['span_id']} not under its round span")
        check(task["t_start"] >= parent["t_start"] - ALIGN_SLACK
              and task["t_end"] <= parent["t_end"] + ALIGN_SLACK,
              f"client_task {task['span_id']} interval escapes its round "
              "after clock alignment")
    check(len(trains) == args.rounds * args.clients,
          "every task should record one local_train")
    for train in trains:
        check(train["parent_id"] in task_ids,
              f"local_train {train['span_id']} not under a client_task")

    report = render_report(run_dir)
    check("client_task" in report and "round" in report,
          "report CLI missed the federation spans")

    chrome_path = export_chrome_trace(trace_path)
    payload = json.loads(chrome_path.read_text())
    complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    check(len(complete) == len(spans),
          "Chrome export span count mismatch")
    check(payload["otherData"]["trace_id"] == header["trace_id"],
          "Chrome export lost the trace_id")

    print(f"merged trace OK: {len(spans)} spans, {args.clients} worker "
          f"process(es), trace_id {header['trace_id']}")
    print(f"artifacts: {trace_path}, {chrome_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
